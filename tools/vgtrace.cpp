/// vgtrace — wire-trace capture & replay tool.
///
///   vgtrace record <scenario> <out.vgt> [--seed N]   capture a scenario
///   vgtrace replay <trace.vgt> [--mode M]            replay the recognizer
///   vgtrace stats  <trace.vgt>                       summarize + spike table
///   vgtrace diff   <a.vgt> <b.vgt>                   compare two traces
///   vgtrace list                                     list known scenarios
///
/// `record` re-runs one of the named deterministic scenarios; the same
/// scenario + seed always reproduces the shipped golden traces byte for byte
/// (see EXPERIMENTS.md for the regeneration policy).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "trace/Replayer.h"
#include "trace/TraceReader.h"
#include "workload/TraceScenarios.h"

using namespace vg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  vgtrace record <scenario> <out.vgt> [--seed N]\n"
               "  vgtrace replay <trace.vgt> [--mode monitor|voiceguard|naive]\n"
               "  vgtrace stats  <trace.vgt>\n"
               "  vgtrace diff   <a.vgt> <b.vgt> [--no-faults]\n"
               "  vgtrace list\n");
  return 2;
}

int cmd_list() {
  for (const workload::TraceScenario& s : workload::trace_scenarios()) {
    std::printf("%-18s seed %-6llu %s\n", s.name.c_str(),
                static_cast<unsigned long long>(s.default_seed),
                s.summary.c_str());
  }
  return 0;
}

int cmd_record(const std::string& scenario, const std::string& out,
               std::uint64_t seed) {
  const workload::TraceScenarioResult r =
      workload::run_trace_scenario(scenario, seed);
  // run_trace_scenario already serialized the capture; just persist it.
  std::FILE* f = std::fopen(out.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "vgtrace: cannot open %s for writing\n", out.c_str());
    return 1;
  }
  const std::size_t n = std::fwrite(r.bytes.data(), 1, r.bytes.size(), f);
  const int rc = std::fclose(f);
  if (n != r.bytes.size() || rc != 0) {
    std::fprintf(stderr, "vgtrace: short write to %s\n", out.c_str());
    return 1;
  }
  const trace::TraceReader t = trace::TraceReader::parse(r.bytes);
  std::printf("recorded %s (seed %llu): %zu bytes, %zu frames, %zu flows\n",
              scenario.c_str(), static_cast<unsigned long long>(seed),
              r.bytes.size(), t.records().size(), t.flows().size());
  if (!r.synthetic) {
    std::printf("live guard recognized %zu spikes\n", r.live_spikes.size());
  }
  return 0;
}

void print_replay(const trace::ReplayResult& res) {
  std::printf("frames %llu | flows %llu (avs %llu, google %llu, other %llu)\n",
              static_cast<unsigned long long>(res.frames),
              static_cast<unsigned long long>(res.flows),
              static_cast<unsigned long long>(res.avs_flows),
              static_cast<unsigned long long>(res.google_flows),
              static_cast<unsigned long long>(res.unmonitored_flows));
  std::printf(
      "tls records %llu | datagrams %llu | dns answers %llu | heartbeats "
      "%llu\n",
      static_cast<unsigned long long>(res.tls_records),
      static_cast<unsigned long long>(res.datagrams),
      static_cast<unsigned long long>(res.dns_answers),
      static_cast<unsigned long long>(res.heartbeats));
  std::printf(
      "avs ip updates: %llu from dns, %llu from signature\n",
      static_cast<unsigned long long>(res.avs_dns_updates),
      static_cast<unsigned long long>(res.avs_signature_updates));
  std::printf("spikes: %zu (%llu command, %llu response, %llu unknown)\n",
              res.spikes.size(),
              static_cast<unsigned long long>(res.commands),
              static_cast<unsigned long long>(res.responses),
              static_cast<unsigned long long>(res.unknowns));
}

void print_spike_table(const trace::ReplayResult& res) {
  std::printf("\n%-5s %-5s %-12s %-9s %-14s %s\n", "#", "flow", "start",
              "class", "rule", "prefix");
  for (std::size_t i = 0; i < res.spikes.size(); ++i) {
    const trace::ReplaySpike& sp = res.spikes[i];
    std::string prefix;
    for (std::uint32_t len : sp.prefix) {
      if (!prefix.empty()) prefix += ',';
      prefix += std::to_string(len);
    }
    std::printf("%-5zu %-5llu %-12s %-9s %-14s [%s]\n", i + 1,
                static_cast<unsigned long long>(sp.flow_id),
                sim::format_time(sp.start).c_str(),
                guard::to_string(sp.cls).c_str(),
                guard::to_string(sp.rule).c_str(), prefix.c_str());
  }
}

void print_fault_annotations(const trace::TraceReader& t) {
  std::size_t count = 0;
  for (const trace::TraceRecord& rec : t.records()) {
    if (rec.kind == trace::FrameKind::kFault) ++count;
  }
  if (count == 0) return;
  std::printf("\ninjected faults (%zu):\n", count);
  for (const trace::TraceRecord& rec : t.records()) {
    if (rec.kind != trace::FrameKind::kFault) continue;
    std::printf("  %-12s %-14s param %llu\n",
                sim::format_time(rec.when).c_str(),
                trace::fault_code_name(rec.fault_code),
                static_cast<unsigned long long>(rec.fault_param));
  }
}

int cmd_replay(const std::string& path, guard::GuardMode mode, bool table) {
  const trace::TraceReader t = trace::TraceReader::load(path);
  std::printf("%s: scenario '%s', seed %llu, %s of wire time\n", path.c_str(),
              t.meta().scenario.c_str(),
              static_cast<unsigned long long>(t.meta().seed),
              sim::format_duration(t.end_time() - sim::TimePoint{}).c_str());
  trace::ReplayOptions opts;
  opts.mode = mode;
  const trace::ReplayResult res = trace::Replayer{opts}.run(t);
  print_replay(res);
  if (table) {
    print_spike_table(res);
    print_fault_annotations(t);
  }
  return 0;
}

int cmd_diff(const std::string& a, const std::string& b, bool no_faults) {
  const std::vector<std::uint8_t> ba = trace::read_file(a);
  const std::vector<std::uint8_t> bb = trace::read_file(b);
  if (!no_faults && ba == bb) {
    std::printf("traces are byte-identical (%zu bytes)\n", ba.size());
    return 0;
  }
  // Decode both and compare frame by frame (reporting the first diverging
  // frame is far more actionable than a raw byte offset). With --no-faults,
  // injected-fault annotations are stripped from both sides first, so a
  // chaos capture can be compared against a benign one.
  const trace::TraceReader ta = trace::TraceReader::parse(ba);
  const trace::TraceReader tb = trace::TraceReader::parse(bb);
  if (ta.meta().scenario != tb.meta().scenario ||
      ta.meta().seed != tb.meta().seed) {
    std::printf("headers differ: '%s' seed %llu vs '%s' seed %llu\n",
                ta.meta().scenario.c_str(),
                static_cast<unsigned long long>(ta.meta().seed),
                tb.meta().scenario.c_str(),
                static_cast<unsigned long long>(tb.meta().seed));
  }
  auto filtered = [no_faults](const trace::TraceReader& t) {
    std::vector<const trace::TraceRecord*> recs;
    recs.reserve(t.records().size());
    for (const trace::TraceRecord& rec : t.records()) {
      if (no_faults && rec.kind == trace::FrameKind::kFault) continue;
      recs.push_back(&rec);
    }
    return recs;
  };
  const std::vector<const trace::TraceRecord*> fa = filtered(ta);
  const std::vector<const trace::TraceRecord*> fb = filtered(tb);
  const std::size_t n = std::min(fa.size(), fb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const trace::TraceRecord& ra = *fa[i];
    const trace::TraceRecord& rb = *fb[i];
    if (ra.kind != rb.kind || ra.when != rb.when || ra.flow != rb.flow ||
        ra.upstream != rb.upstream || ra.length != rb.length ||
        ra.domain_code != rb.domain_code || ra.dns_answer != rb.dns_answer ||
        ra.fault_code != rb.fault_code || ra.fault_param != rb.fault_param ||
        (ra.kind == trace::FrameKind::kTlsRecord && ra.tls_type != rb.tls_type)) {
      std::printf("first divergence at frame %zu:\n", i);
      std::printf("  a: kind %u t %s flow %d len %u\n",
                  static_cast<unsigned>(ra.kind),
                  sim::format_time(ra.when).c_str(), ra.flow, ra.length);
      std::printf("  b: kind %u t %s flow %d len %u\n",
                  static_cast<unsigned>(rb.kind),
                  sim::format_time(rb.when).c_str(), rb.flow, rb.length);
      return 1;
    }
  }
  if (fa.size() != fb.size()) {
    std::printf("traces differ: %zu vs %zu frames (first %zu identical)\n",
                fa.size(), fb.size(), n);
    return 1;
  }
  std::printf("traces are frame-identical%s (%zu frames)\n",
              no_faults ? " modulo fault annotations" : "", n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "record") {
      if (args.size() < 3) return usage();
      std::uint64_t seed = 0;
      bool seed_set = false;
      for (std::size_t i = 3; i + 1 < args.size(); i += 2) {
        if (args[i] == "--seed") {
          seed = std::strtoull(args[i + 1].c_str(), nullptr, 10);
          seed_set = true;
        } else {
          return usage();
        }
      }
      if (!seed_set) {
        for (const workload::TraceScenario& s : workload::trace_scenarios()) {
          if (s.name == args[1]) {
            seed = s.default_seed;
            seed_set = true;
          }
        }
        if (!seed_set) {
          std::fprintf(stderr, "vgtrace: unknown scenario '%s' (try list)\n",
                       args[1].c_str());
          return 2;
        }
      }
      return cmd_record(args[1], args[2], seed);
    }
    if (cmd == "replay" || cmd == "stats") {
      if (args.size() < 2) return usage();
      guard::GuardMode mode = guard::GuardMode::kMonitor;
      for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
        if (args[i] == "--mode") {
          if (args[i + 1] == "monitor") mode = guard::GuardMode::kMonitor;
          else if (args[i + 1] == "voiceguard") mode = guard::GuardMode::kVoiceGuard;
          else if (args[i + 1] == "naive") mode = guard::GuardMode::kNaive;
          else return usage();
        } else {
          return usage();
        }
      }
      return cmd_replay(args[1], mode, /*table=*/cmd == "stats");
    }
    if (cmd == "diff") {
      if (args.size() < 3 || args.size() > 4) return usage();
      bool no_faults = false;
      if (args.size() == 4) {
        if (args[3] != "--no-faults") return usage();
        no_faults = true;
      }
      return cmd_diff(args[1], args[2], no_faults);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vgtrace: %s\n", e.what());
    return 1;
  }
}
