/// The fleet subsystem (src/fleet/): WorldTemplate derivation, integer-exact
/// AggregateStats merging, and the parity invariant that makes the whole
/// design trustworthy — run_fleet over any shard count / worker count /
/// residency cap is bit-identical to the serial fold over the same homes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/AggregateStats.h"
#include "fleet/FleetRunner.h"
#include "fleet/WorldTemplate.h"
#include "scenario/Generator.h"
#include "scenario/ScenarioLoader.h"
#include "scenario/Serialize.h"
#include "workload/ScenarioRun.h"
#include "workload/World.h"

namespace vg::fleet {
namespace {

/// A small scripted home under a light fault plan with jitter and attack
/// flips — every fleet mechanism (derivation, faults, decisions) exercised.
constexpr const char* kPopulated = R"([scenario]
name = fleet-base
kind = home
seed = 1234
speaker = echo_dot

[home]
testbed = apartment
deployment = 1
owners = 2

[guard]
mode = voiceguard

[schedule]
command = 10 legit
command = 25 attack
command = 41 legit
drain_s = 75

[faults]
link = lan flap 15 2

[population]
homes = 6
command_jitter_s = 1.5
attack_flip = 0.3
)";

scenario::ScenarioSpec populated_spec() {
  return scenario::ScenarioLoader::load(kPopulated);
}

// ---------------------------------------------------------------------------
// AggregateStats: integer-exact fold/merge and percentile extraction.

TEST(AggregateStats, MergeEqualsSingleFoldExactly) {
  workload::ChaosResult r;
  r.spikes = 3;
  r.released = 2;
  r.blocked = 1;
  r.commands_executed = 2;

  AggregateStats whole;
  AggregateStats left;
  AggregateStats right;
  for (int i = 0; i < 10; ++i) {
    AggregateStats& half = i < 5 ? left : right;
    whole.add_home(r, 100 + i, 3, 1);
    half.add_home(r, 100 + i, 3, 1);
    const double lat = 0.050 * (i + 1);
    whole.add_latency(lat);
    half.add_latency(lat);
    const double rssi = -60.0 - i;
    whole.add_rssi(rssi);
    half.add_rssi(rssi);
  }
  AggregateStats merged;
  merged.merge(left);
  merged.merge(right);
  EXPECT_TRUE(merged == whole);
  EXPECT_EQ(merged.fingerprint(), whole.fingerprint());

  // Merge order must not matter either (commutativity).
  AggregateStats reversed;
  reversed.merge(right);
  reversed.merge(left);
  EXPECT_TRUE(reversed == whole);

  EXPECT_EQ(whole.counters().homes, 10u);
  EXPECT_EQ(whole.counters().commands, 30u);
  EXPECT_EQ(whole.counters().spikes, 30u);
  EXPECT_EQ(whole.latency_samples(), 10u);
  EXPECT_EQ(whole.rssi_samples(), 10u);
}

TEST(AggregateStats, PercentilesReadTheHistogramEdges) {
  AggregateStats s;
  EXPECT_DOUBLE_EQ(s.latency_percentiles().p50, 0.0);  // no samples

  // 100 samples at 10 ms, 1 at 500 ms: p50 in the first bin, p99 too (the
  // 100th of 101 ranks), but the max lands in the 500 ms bin.
  for (int i = 0; i < 100; ++i) s.add_latency(0.010);
  s.add_latency(0.500);
  const auto p = s.latency_percentiles();
  EXPECT_DOUBLE_EQ(p.p50, 0.025);  // upper edge of bin [0, 25 ms)
  EXPECT_DOUBLE_EQ(p.p95, 0.025);
  EXPECT_DOUBLE_EQ(p.p99, 0.025);
  EXPECT_NEAR(s.mean_latency_s(), (100 * 0.010 + 0.500) / 101.0, 1e-9);

  AggregateStats tail;
  for (int i = 0; i < 50; ++i) tail.add_latency(0.010);
  for (int i = 0; i < 50; ++i) tail.add_latency(0.480);
  EXPECT_DOUBLE_EQ(tail.latency_percentiles().p50, 0.025);
  EXPECT_DOUBLE_EQ(tail.latency_percentiles().p95, 0.500);  // bin [475, 500)
}

TEST(AggregateStats, OutOfRangeSamplesLandInOverflowBins) {
  AggregateStats s;
  s.add_latency(9999.0);             // past the last latency bin
  s.add_rssi(-200.0);                // below the RSSI window
  s.add_rssi(50.0);                  // above it
  EXPECT_EQ(s.latency_hist()[AggregateStats::kLatencyBins], 1u);
  EXPECT_EQ(s.latency_samples(), 1u);
  EXPECT_EQ(s.rssi_samples(), 2u);
  // Fingerprint must see them (two objects differing only here differ).
  AggregateStats t;
  EXPECT_NE(s.fingerprint(), t.fingerprint());
}

// ---------------------------------------------------------------------------
// WorldTemplate: derivation properties.

TEST(WorldTemplate, RejectsNonScriptedScenarios) {
  const scenario::ScenarioSpec capture = scenario::ScenarioLoader::load(
      "[scenario]\nname = cap\n[schedule]\ncommands = 4\n");
  EXPECT_THROW(WorldTemplate{capture}, std::invalid_argument);
}

TEST(WorldTemplate, HomeZeroIsTheBaseSpecVerbatim) {
  const WorldTemplate tmpl{populated_spec()};
  EXPECT_EQ(tmpl.homes(), 6u);
  const scenario::ScenarioSpec h0 = tmpl.home_spec(0);
  EXPECT_EQ(h0.seed, tmpl.base().seed);
  EXPECT_EQ(h0.name, "fleet-base");
  EXPECT_FALSE(h0.population.enabled());  // derived specs are single homes
  scenario::ScenarioSpec base = tmpl.base();
  base.population = {};
  EXPECT_TRUE(h0 == base);
}

TEST(WorldTemplate, DerivedSeedsAreDistinctAndStable) {
  const WorldTemplate tmpl{populated_spec()};
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) {
    seeds.push_back(tmpl.home_seed(i));
    EXPECT_EQ(tmpl.home_seed(i), seeds.back());  // stable under re-query
  }
  for (std::size_t a = 0; a < seeds.size(); ++a) {
    for (std::size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]) << "homes " << a << " and " << b;
    }
  }
}

TEST(WorldTemplate, JitterOnlyGrowsGapsAndstaysLoaderValid) {
  const scenario::ScenarioSpec base = populated_spec();
  const WorldTemplate tmpl{base};
  for (std::uint64_t i = 1; i < tmpl.homes(); ++i) {
    const scenario::ScenarioSpec spec = tmpl.home_spec(i);
    EXPECT_EQ(spec.name, "fleet-base-h" + std::to_string(i));
    EXPECT_EQ(spec.faults.name, spec.name);
    ASSERT_EQ(spec.schedule.commands.size(), base.schedule.commands.size());
    for (std::size_t c = 0; c < spec.schedule.commands.size(); ++c) {
      EXPECT_GE(spec.schedule.commands[c].at.ns(),
                base.schedule.commands[c].at.ns());
      if (c > 0) {
        const auto base_gap = base.schedule.commands[c].at.ns() -
                              base.schedule.commands[c - 1].at.ns();
        const auto gap = spec.schedule.commands[c].at.ns() -
                         spec.schedule.commands[c - 1].at.ns();
        EXPECT_GE(gap, base_gap);
      }
    }
    // The drain gap past the last command is preserved, so the derived spec
    // survives the loader's own validation on a round-trip.
    const scenario::ScenarioSpec reparsed =
        scenario::ScenarioLoader::load(scenario::write_scn(spec));
    EXPECT_TRUE(reparsed == spec) << scenario::write_scn(spec);
  }
}

TEST(WorldTemplate, ZeroKnobPopulationsDeriveUnjitteredTwins) {
  scenario::ScenarioSpec base = populated_spec();
  base.population.command_jitter_s = 0.0;
  base.population.attack_flip = 0.0;
  const WorldTemplate tmpl{base};
  const scenario::ScenarioSpec h3 = tmpl.home_spec(3);
  ASSERT_EQ(h3.schedule.commands.size(), base.schedule.commands.size());
  for (std::size_t c = 0; c < h3.schedule.commands.size(); ++c) {
    EXPECT_EQ(h3.schedule.commands[c].at, base.schedule.commands[c].at);
    EXPECT_EQ(h3.schedule.commands[c].attack,
              base.schedule.commands[c].attack);
  }
  EXPECT_NE(h3.seed, base.seed);  // the world seed still diverges
}

// ---------------------------------------------------------------------------
// Calibration artifacts: capture → install round-trips exactly.

TEST(CalibrationArtifacts, InstallThenRecaptureRoundTrips) {
  const scenario::ScenarioSpec spec = populated_spec();
  const workload::WorldConfig cfg = workload::world_config_from_spec(spec);

  workload::SmartHomeWorld calibrated{cfg};
  calibrated.calibrate();
  const workload::CalibrationArtifacts art = calibrated.calibration_artifacts();
  ASSERT_FALSE(art.thresholds.empty());

  workload::SmartHomeWorld injected{cfg};
  injected.calibrate_from(art);
  const workload::CalibrationArtifacts back = injected.calibration_artifacts();
  ASSERT_EQ(back.thresholds.size(), art.thresholds.size());
  for (std::size_t i = 0; i < art.thresholds.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.thresholds[i], art.thresholds[i]);
  }
  ASSERT_EQ(back.tracker_fits.size(), art.tracker_fits.size());
  for (std::size_t t = 0; t < art.tracker_fits.size(); ++t) {
    ASSERT_EQ(back.tracker_fits[t].size(), art.tracker_fits[t].size());
    for (std::size_t f = 0; f < art.tracker_fits[t].size(); ++f) {
      EXPECT_EQ(back.tracker_fits[t][f].label, art.tracker_fits[t][f].label);
      EXPECT_DOUBLE_EQ(back.tracker_fits[t][f].slope,
                       art.tracker_fits[t][f].slope);
      EXPECT_DOUBLE_EQ(back.tracker_fits[t][f].intercept,
                       art.tracker_fits[t][f].intercept);
    }
  }
}

TEST(CalibrationArtifacts, InstallRejectsMismatchedShapes) {
  const scenario::ScenarioSpec spec = populated_spec();
  const workload::WorldConfig cfg = workload::world_config_from_spec(spec);
  workload::SmartHomeWorld world{cfg};
  workload::CalibrationArtifacts art;  // empty: wrong device count
  EXPECT_THROW(world.calibrate_from(art), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The parity invariant (label: threaded — run_fleet drives BatchRunner).

TEST(FleetParity, ShardAndResidencyCountsNeverChangeTheStats) {
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());
  EXPECT_EQ(serial.counters().homes, tmpl.homes());
  EXPECT_EQ(serial.counters().commands, 3 * tmpl.homes());
  EXPECT_GT(serial.counters().events, 0u);
  EXPECT_GT(serial.latency_samples(), 0u);
  EXPECT_GT(serial.rssi_samples(), 0u);

  for (const unsigned shards : {1u, 2u, 8u}) {
    for (const std::uint64_t resident : {0ull, 1ull, 3ull}) {
      FleetConfig cfg;
      cfg.shards = shards;
      cfg.max_resident = resident;
      const AggregateStats fleet = run_fleet(tmpl, cfg);
      EXPECT_TRUE(fleet == serial)
          << shards << " shard(s), max_resident " << resident
          << ": fingerprint " << fleet.fingerprint() << " != "
          << serial.fingerprint();
    }
  }
}

TEST(FleetParity, ExplicitRangesMatchTheContiguousSplit) {
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());
  FleetConfig cfg;
  cfg.shards = 3;
  cfg.ranges = {{4, 6}, {0, 1}, {1, 4}};  // unordered, uneven — still a partition
  const AggregateStats fleet = run_fleet(tmpl, cfg);
  EXPECT_TRUE(fleet == serial);
}

TEST(FleetParity, GeneratedPopulationsHoldParityToo) {
  // The first generated seed that carries a population, checked end to end —
  // the same shape the fuzzer's registered population check exercises.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const scenario::ScenarioSpec spec = scenario::Generator::generate(seed);
    if (!spec.scripted() || !spec.population.enabled()) continue;
    const WorldTemplate tmpl{spec};
    const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.max_resident = 2;
    const AggregateStats fleet = run_fleet(tmpl, cfg);
    EXPECT_TRUE(fleet == serial) << "seed " << seed;
    return;
  }
  FAIL() << "no generated seed in [1, 64] carried a population";
}

// ---------------------------------------------------------------------------
// Wake calendar + hibernation: scheduling is invisible in the stats.

TEST(FleetParity, HibernationNeverChangesTheStats) {
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());

  // Aggressive (hibernate at any forward gap), default, and never: all three
  // must be bit-identical — hibernation is memory-only.
  FleetConfig eager;
  eager.shards = 2;
  eager.hibernate_gap = sim::Duration{1};
  WakeTelemetry eager_tel;
  EXPECT_TRUE(run_fleet(tmpl, eager, &eager_tel) == serial);
  EXPECT_GT(eager_tel.hibernations, 0u);

  FleetConfig never;
  never.shards = 2;
  never.hibernate_gap = sim::Duration{0};
  WakeTelemetry never_tel;
  EXPECT_TRUE(run_fleet(tmpl, never, &never_tel) == serial);
  EXPECT_EQ(never_tel.hibernations, 0u);
  EXPECT_EQ(never_tel.trim_bytes, 0u);

  // The scheduler telemetry itself is deterministic for a fixed config: the
  // same wake sequence ran under both hibernation policies.
  EXPECT_EQ(eager_tel.wakes, never_tel.wakes);
  EXPECT_EQ(eager_tel.epochs_skipped, never_tel.epochs_skipped);
}

TEST(WakeCalendar, SkipsIdleEpochsAcrossALongDrain) {
  // Commands end by ~50 s but the drain stretches to 300 s: the round-robin
  // loop would grind ~25 empty epochs per home, the calendar must skip them
  // — and still produce bit-identical stats.
  scenario::ScenarioSpec spec = populated_spec();
  spec.schedule.drain = sim::seconds(300);
  const WorldTemplate tmpl{spec};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());

  FleetConfig cfg;
  cfg.shards = 2;
  WakeTelemetry tel;
  EXPECT_TRUE(run_fleet(tmpl, cfg, &tel) == serial);
  // Drain maintenance (keepalives, heartbeats) still wakes homes every few
  // epochs, so not every idle epoch is skippable — but a meaningful share is.
  EXPECT_GT(tel.epochs_skipped, 5u * tmpl.homes());
  EXPECT_GT(tel.wakes, 0u);
  // Skipping must actually shrink the wake count below the epoch-grid total
  // (>= 31 epochs per home over a 300 s drain).
  EXPECT_LT(tel.wakes, 31u * tmpl.homes());
}

TEST(WakeCalendar, EarliestPossibleEndIsHandled) {
  // One command at offset 0 with the minimum legal drain: the home's end
  // lands before most of the epoch grid, so next_wake clamps to end_ almost
  // immediately. Parity must survive the clamp.
  scenario::ScenarioSpec spec = populated_spec();
  spec.schedule.commands.resize(1);
  spec.schedule.commands[0].at = sim::Duration{0};
  spec.schedule.drain = sim::seconds(30);
  const WorldTemplate tmpl{spec};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());
  FleetConfig cfg;
  cfg.shards = 3;
  cfg.max_resident = 2;
  EXPECT_TRUE(run_fleet(tmpl, cfg) == serial);
}

TEST(WakeCalendar, TelemetryReportsTheResolvedRunShape) {
  const WorldTemplate tmpl{populated_spec()};
  FleetConfig cfg;
  cfg.shards = 2;  // 6 homes -> ranges of 3
  WakeTelemetry tel;
  (void)run_fleet(tmpl, cfg, &tel);
  EXPECT_GE(tel.workers, 1u);
  EXPECT_EQ(tel.resident_cap, 3u);  // max_resident 0 = whole shard range

  FleetConfig capped;
  capped.shards = 2;
  capped.max_resident = 2;
  WakeTelemetry capped_tel;
  (void)run_fleet(tmpl, capped, &capped_tel);
  EXPECT_EQ(capped_tel.resident_cap, 2u);
}

TEST(FleetParity, WakeBatchSizeNeverChangesTheStats) {
  // wake_batch is a locality knob: a popped home may run several consecutive
  // horizons before re-entering the heap. Whatever the batch, the horizons
  // executed per home are the same, so stats AND wake telemetry must match.
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());

  WakeTelemetry reference_tel;
  FleetConfig reference;
  reference.shards = 2;
  reference.wake_batch = 1;  // the strict earliest-wake-first order
  EXPECT_TRUE(run_fleet(tmpl, reference, &reference_tel) == serial);

  for (const std::uint32_t batch : {0u, 3u, 1000u}) {
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.wake_batch = batch;
    WakeTelemetry tel;
    EXPECT_TRUE(run_fleet(tmpl, cfg, &tel) == serial)
        << "wake_batch " << batch;
    EXPECT_EQ(tel.wakes, reference_tel.wakes) << "wake_batch " << batch;
    EXPECT_EQ(tel.epochs_skipped, reference_tel.epochs_skipped)
        << "wake_batch " << batch;
  }
}

TEST(FleetParity, PinnedWorkersAreBitIdentical) {
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());
  FleetConfig cfg;
  cfg.shards = 4;
  cfg.pin_threads = true;  // placement hint only; results must not move
  EXPECT_TRUE(run_fleet(tmpl, cfg) == serial);
}

TEST(ParkedFleet, ParkThenFinishMatchesSerialExactly) {
  const WorldTemplate tmpl{populated_spec()};
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());

  ParkedFleet parked{tmpl, tmpl.homes()};
  EXPECT_EQ(parked.count(), tmpl.homes());
  // Hibernating a parked home must actually give memory back: the arena
  // holds boot + calibration + command traffic it no longer needs.
  EXPECT_GT(parked.trim_bytes(), 0u);
  EXPECT_TRUE(parked.finish() == serial);
}

// ---------------------------------------------------------------------------
// FleetConfig validation: every rejection names its constraint.

void expect_invalid(const FleetConfig& cfg, std::uint64_t homes,
                    const std::string& substr) {
  try {
    validate_fleet_config(cfg, homes);
    FAIL() << "expected invalid_argument containing \"" << substr << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find(substr), std::string::npos)
        << e.what();
  }
}

TEST(FleetConfigValidation, RejectsEveryMalformedShape) {
  FleetConfig ok;
  EXPECT_NO_THROW(validate_fleet_config(ok, 10));

  expect_invalid(ok, 0, "at least 1 home");
  expect_invalid(ok, FleetConfig::kMaxHomes + 1, "exceeds");

  FleetConfig zero_shards;
  zero_shards.shards = 0;
  expect_invalid(zero_shards, 10, "shards must be >= 1");

  FleetConfig wrong_count;
  wrong_count.shards = 2;
  wrong_count.ranges = {{0, 10}};
  expect_invalid(wrong_count, 10, "exactly one [begin, end) per shard");

  FleetConfig inverted;
  inverted.ranges = {{5, 5}};
  expect_invalid(inverted, 10, "empty or inverted");

  FleetConfig oob;
  oob.ranges = {{0, 11}};
  expect_invalid(oob, 10, "exceeds the population");

  FleetConfig overlap;
  overlap.shards = 2;
  overlap.ranges = {{0, 6}, {5, 10}};
  expect_invalid(overlap, 10, "overlapping");

  FleetConfig gap;
  gap.shards = 2;
  gap.ranges = {{0, 4}, {5, 10}};
  expect_invalid(gap, 10, "every home must run exactly once");

  FleetConfig partition;
  partition.shards = 2;
  partition.ranges = {{5, 10}, {0, 5}};
  EXPECT_NO_THROW(validate_fleet_config(partition, 10));
}

TEST(FleetConfigValidation, RunFleetRejectsBadConfigsBeforeRunning) {
  const WorldTemplate tmpl{populated_spec()};
  FleetConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(run_fleet(tmpl, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace vg::fleet
