#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "speaker/EchoDot.h"
#include "speaker/GoogleHomeMini.h"
#include "voiceguard/GuardBox.h"

namespace vg {
namespace {

using net::IpAddress;

cloud::CloudFarm::Options no_migration() {
  cloud::CloudFarm::Options o;
  o.avs_migration_mean = sim::Duration{0};
  return o;
}

/// speaker -- guard -- router -- cloud, with a fixed-answer decision oracle.
struct GuardWorld {
  sim::Simulation sim{13};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, no_migration()};
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};
  guard::FixedDecisionModule decision;
  guard::GuardBox guard;

  explicit GuardWorld(bool verdict,
                      sim::Duration verdict_latency = sim::from_seconds(1.5),
                      guard::GuardMode mode = guard::GuardMode::kVoiceGuard)
      : decision(sim, verdict, verdict_latency),
        guard(net, "guard", decision, [&] {
          guard::GuardBox::Options o;
          o.speaker_ips = {IpAddress(192, 168, 1, 200)};
          o.mode = mode;
          return o;
        }()) {
    net::Link& lan = net.add_link(speaker_host, guard, sim::milliseconds(2));
    speaker_host.attach(lan);
    guard.set_lan_link(lan);
    net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
    guard.set_wan_link(up);
    router.add_route(speaker_host.ip(), up);
  }

  speaker::CommandSpec cmd(std::uint64_t id, int words = 6) {
    speaker::CommandSpec c;
    c.id = id;
    c.text = "test";
    c.words = words;
    return c;
  }

  void run_to(double secs) { sim.run_until(sim::TimePoint{} + sim::from_seconds(secs)); }
};

speaker::EchoDotModel::Options regular_echo() {
  speaker::EchoDotModel::Options o;
  o.phase1.irregular_prob = 0.0;  // deterministic recognition in these tests
  o.misc_connection_mean = sim::Duration{0};
  return o;
}

TEST(GuardBox, LearnsAvsIpFromBootDns) {
  GuardWorld w{true};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  EXPECT_TRUE(echo.connected());
  EXPECT_EQ(w.guard.tracked_avs_ip(), w.farm.current_avs_ip());
  EXPECT_GE(w.guard.avs_ip_updates_from_dns(), 1u);
}

TEST(GuardBox, ProxyIsTransparentToNormalOperation) {
  GuardWorld w{true, sim::milliseconds(800)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(90);
  ASSERT_EQ(echo.interactions().size(), 1u);
  EXPECT_TRUE(echo.interactions()[0].response_received);
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  EXPECT_EQ(w.farm.total_sequence_violations(), 0u);
  EXPECT_EQ(w.guard.commands_released(), 1u);
}

TEST(GuardBox, HoldsCommandForVerdictDuration) {
  GuardWorld w{true, sim::from_seconds(1.5)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(90);

  const auto& events = w.guard.spike_events();
  ASSERT_FALSE(events.empty());
  const auto& first = events.front();
  EXPECT_EQ(first.cls, guard::SpikeClass::kCommand);
  EXPECT_TRUE(first.held);
  EXPECT_TRUE(first.queried);
  EXPECT_TRUE(first.verdict_legit);
  EXPECT_NEAR(first.hold_seconds, 1.5, 0.1);
  EXPECT_FALSE(first.dropped);
}

TEST(GuardBox, ResponseSpikesAreNotQueried) {
  GuardWorld w{true, sim::milliseconds(500)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(90);

  const auto& events = w.guard.spike_events();
  ASSERT_GE(events.size(), 2u);  // 1 command + >=1 response spike
  std::size_t responses = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cls, guard::SpikeClass::kResponse) << "event " << i;
    EXPECT_FALSE(events[i].queried) << "event " << i;
    ++responses;
  }
  EXPECT_GE(responses, 1u);
  EXPECT_EQ(w.decision.queries(), 1u);
}

TEST(GuardBox, NaiveModeHoldsResponsesToo) {
  GuardWorld w{true, sim::milliseconds(600), guard::GuardMode::kNaive};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(90);
  const auto& events = w.guard.spike_events();
  ASSERT_GE(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_TRUE(e.queried);  // the Fig. 3 strawman: every spike is held
  }
  EXPECT_EQ(w.decision.queries(), events.size());
}

TEST(GuardBox, DropBlocksCommandViaRecordGap) {
  GuardWorld w{false, sim::from_seconds(1.5)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(666));
  w.run_to(120);

  // The cloud never executed the command ...
  EXPECT_TRUE(w.farm.all_executed().empty());
  EXPECT_EQ(w.guard.commands_blocked(), 1u);
  // ... the TLS session died on the sequence gap (Fig. 4 case III) ...
  EXPECT_GE(w.farm.total_sequence_violations(), 1u);
  // ... the speaker saw an error and reconnected.
  ASSERT_FALSE(echo.interactions().empty());
  EXPECT_FALSE(echo.interactions()[0].response_received);
  EXPECT_GE(echo.reconnects(), 1u);
  w.run_to(140);
  EXPECT_TRUE(echo.connected());
}

TEST(GuardBox, TracksAvsIpAcrossDnslessMigration) {
  GuardWorld w{true, sim::milliseconds(500)};
  auto opts = regular_echo();
  opts.dns_on_reconnect_prob = 0.0;  // force the signature-tracking path
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.run_to(10);
  ASSERT_EQ(w.guard.tracked_avs_ip(), w.farm.current_avs_ip());

  w.farm.migrate_avs_now();
  w.run_to(40);
  ASSERT_TRUE(echo.connected());
  ASSERT_GE(echo.dnsless_reconnects(), 1u);
  // No DNS was visible, yet the guard followed the IP via the signature.
  EXPECT_EQ(w.guard.tracked_avs_ip(), w.farm.current_avs_ip());
  EXPECT_GE(w.guard.avs_ip_updates_from_signature(), 1u);

  // And a command on the new connection is still recognized and held.
  echo.hear_command(w.cmd(2));
  w.run_to(120);
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  bool found_command = false;
  for (const auto& e : w.guard.spike_events()) {
    if (e.cls == guard::SpikeClass::kCommand && e.queried) found_command = true;
  }
  EXPECT_TRUE(found_command);
}

TEST(GuardBox, GoogleTcpCommandBlocked) {
  GuardWorld w{false, sim::from_seconds(1.2)};
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 0.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(7, 7));
  w.run_to(90);
  EXPECT_TRUE(w.farm.all_executed().empty());
  EXPECT_GE(w.guard.commands_blocked(), 1u);
  ASSERT_FALSE(ghm.interactions().empty());
  EXPECT_FALSE(ghm.interactions()[0].response_received);
}

TEST(GuardBox, GoogleTcpCommandReleased) {
  GuardWorld w{true, sim::from_seconds(1.2)};
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 0.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(8, 7));
  w.run_to(90);
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  ASSERT_FALSE(ghm.interactions().empty());
  EXPECT_TRUE(ghm.interactions()[0].response_received);
}

TEST(GuardBox, GoogleQuicCommandBlocked) {
  GuardWorld w{false, sim::from_seconds(1.2)};
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 1.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(9, 7));
  w.run_to(90);
  EXPECT_TRUE(w.farm.all_executed().empty());
  EXPECT_GE(w.guard.commands_blocked(), 1u);
}

TEST(GuardBox, GoogleQuicCommandReleased) {
  GuardWorld w{true, sim::from_seconds(1.2)};
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 1.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(10, 7));
  w.run_to(90);
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  ASSERT_FALSE(ghm.interactions().empty());
  EXPECT_TRUE(ghm.interactions()[0].response_received);
}

TEST(GuardBox, MonitorModeNeverHolds) {
  GuardWorld w{false, sim::from_seconds(1.5), guard::GuardMode::kMonitor};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(90);
  // Even with a "block" oracle, monitor mode lets everything through...
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  EXPECT_EQ(w.guard.commands_blocked(), 0u);
  // ...but still recognizes and classifies the spikes.
  ASSERT_FALSE(w.guard.spike_events().empty());
  EXPECT_EQ(w.guard.spike_events()[0].cls, guard::SpikeClass::kCommand);
  EXPECT_FALSE(w.guard.spike_events()[0].held);
}

TEST(GuardBox, MiscAmazonFlowsAreNotMonitored) {
  GuardWorld w{false, sim::milliseconds(500)};
  auto opts = regular_echo();
  opts.misc_connection_mean = sim::seconds(20);  // frequent misc connections
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::minutes(4));
  // Misc connections carried traffic but never triggered holds or spikes on
  // unmonitored flows (no commands were issued at all).
  EXPECT_EQ(w.decision.queries(), 0u);
  EXPECT_EQ(w.guard.commands_blocked(), 0u);
  EXPECT_TRUE(echo.connected());
}

TEST(GuardBox, HeartbeatsDoNotTriggerSpikes) {
  GuardWorld w{false, sim::milliseconds(500)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  // Five minutes of idle heartbeats: no spike events, no queries.
  w.sim.run_until(sim::TimePoint{} + sim::minutes(5));
  EXPECT_TRUE(w.guard.spike_events().empty());
  EXPECT_EQ(w.decision.queries(), 0u);
  EXPECT_TRUE(echo.connected());
}

}  // namespace
}  // namespace vg
