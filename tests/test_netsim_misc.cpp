#include <gtest/gtest.h>

#include "netsim/Dns.h"
#include "netsim/Host.h"
#include "netsim/MiddleBox.h"
#include "netsim/Router.h"

namespace vg::net {
namespace {

TEST(Address, ParseAndFormat) {
  EXPECT_EQ(IpAddress(192, 168, 1, 200).to_string(), "192.168.1.200");
  EXPECT_EQ(IpAddress::parse("8.8.8.8"), IpAddress(8, 8, 8, 8));
  EXPECT_THROW(IpAddress::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("1.2.3.999"), std::invalid_argument);
  EXPECT_THROW(IpAddress::parse("junk"), std::invalid_argument);
}

TEST(Address, EndpointOrderingAndHash) {
  const Endpoint a{IpAddress(1, 2, 3, 4), 80};
  const Endpoint b{IpAddress(1, 2, 3, 4), 81};
  EXPECT_LT(a, b);
  EXPECT_EQ(FlowKey::canonical(a, b), FlowKey::canonical(b, a));
  EXPECT_NE(std::hash<Endpoint>{}(a), std::hash<Endpoint>{}(b));
}

TEST(Packet, PayloadLengthSumsRecords) {
  Packet p;
  p.records.push_back(TlsRecord{TlsContentType::kApplicationData, 100, 0, ""});
  p.records.push_back(TlsRecord{TlsContentType::kApplicationData, 38, 1, ""});
  p.plain_payload = 12;
  EXPECT_EQ(p.payload_length(), 150u);
}

TEST(Packet, SummaryMentionsFlagsAndLength) {
  Packet p;
  p.id = 7;
  p.src = {IpAddress(10, 0, 0, 1), 1000};
  p.dst = {IpAddress(10, 0, 0, 2), 443};
  p.tcp.flags.set(TcpFlag::kSyn);
  const std::string s = p.summary();
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("#7"), std::string::npos);
}

TEST(Packet, SummaryOfQuicDatagram) {
  Packet p;
  p.id = 42;
  p.src = {IpAddress(192, 168, 1, 50), 50000};
  p.dst = {IpAddress(142, 250, 0, 1), 443};
  p.protocol = Protocol::kUdp;
  p.quic = true;
  p.records.push_back(TlsRecord{TlsContentType::kApplicationData, 900, 3, "voice-audio"});
  p.plain_payload = 60;  // QUIC framing overhead
  EXPECT_EQ(p.summary(),
            "#42 192.168.1.50:50000 > 142.250.0.1:443 UDP/QUIC len=960");
}

TEST(Packet, SummaryOfKeepAliveProbe) {
  Packet p;
  p.id = 9;
  p.src = {IpAddress(192, 168, 1, 30), 40000};
  p.dst = {IpAddress(52, 94, 0, 2), 443};
  p.tcp.flags.set(TcpFlag::kAck);
  p.tcp.seq = 999;
  p.tcp.ack = 500;
  p.keepalive_probe = true;
  EXPECT_EQ(p.summary(),
            "#9 192.168.1.30:40000 > 52.94.0.2:443 [ACK] seq=999 ack=500 "
            "len=0 keepalive");
}

TEST(TcpFlags, ToStringCoversAllCombinations) {
  EXPECT_EQ(TcpFlags{}.to_string(), "-");
  TcpFlags syn_ack;
  syn_ack.set(TcpFlag::kSyn).set(TcpFlag::kAck);
  EXPECT_EQ(syn_ack.to_string(), "SYN,ACK");
  TcpFlags all;
  all.set(TcpFlag::kSyn)
      .set(TcpFlag::kAck)
      .set(TcpFlag::kFin)
      .set(TcpFlag::kRst)
      .set(TcpFlag::kPsh);
  EXPECT_EQ(all.to_string(), "SYN,ACK,FIN,RST,PSH");
}

TEST(Link, DeliversWithLatency) {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Link& l = net.add_link(a, b, sim::milliseconds(7));
  a.attach(l);
  b.attach(l);

  sim::TimePoint arrival;
  b.udp().bind(9, [&](const Packet&) { arrival = sim.now(); });
  a.udp().send_datagram({a.ip(), 1}, {b.ip(), 9}, 10);
  sim.run_all();
  EXPECT_EQ(arrival, sim::TimePoint{} + sim::milliseconds(7));
}

TEST(Link, JitterNeverReordersOneDirection) {
  sim::Simulation sim{3};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Link& l = net.add_link(a, b, sim::milliseconds(5), sim::milliseconds(4));
  a.attach(l);
  b.attach(l);

  std::vector<std::uint32_t> order;
  b.udp().bind(9, [&](const Packet& p) { order.push_back(p.plain_payload); });
  for (std::uint32_t i = 0; i < 50; ++i) {
    sim.after(sim::microseconds(i * 100), [&a, &b, i] {
      a.udp().send_datagram({a.ip(), 1}, {b.ip(), 9}, i);
    });
  }
  sim.run_all();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Router, RoutesByDestination) {
  sim::Simulation sim{1};
  Network net{sim};
  Router router{"r"};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Host c{net, "c", IpAddress(10, 0, 0, 3)};
  Link& la = net.add_link(a, router, sim::milliseconds(1));
  Link& lb = net.add_link(b, router, sim::milliseconds(1));
  Link& lc = net.add_link(c, router, sim::milliseconds(1));
  a.attach(la);
  b.attach(lb);
  c.attach(lc);
  router.add_route(a.ip(), la);
  router.add_route(b.ip(), lb);
  router.add_route(c.ip(), lc);

  int b_got = 0, c_got = 0;
  b.udp().bind(9, [&](const Packet&) { ++b_got; });
  c.udp().bind(9, [&](const Packet&) { ++c_got; });
  a.udp().send_datagram({a.ip(), 1}, {b.ip(), 9}, 10);
  a.udp().send_datagram({a.ip(), 1}, {c.ip(), 9}, 10);
  sim.run_all();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  EXPECT_EQ(router.dropped_packets(), 0u);
}

TEST(Router, DropsUnroutable) {
  sim::Simulation sim{1};
  Network net{sim};
  Router router{"r"};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Link& la = net.add_link(a, router, sim::milliseconds(1));
  a.attach(la);
  router.add_route(a.ip(), la);
  a.udp().send_datagram({a.ip(), 1}, {IpAddress(99, 9, 9, 9), 9}, 10);
  sim.run_all();
  EXPECT_EQ(router.dropped_packets(), 1u);
}

TEST(Dns, ResolvesFromZone) {
  sim::Simulation sim{1};
  Network net{sim};
  Host client{net, "client", IpAddress(10, 0, 0, 1)};
  Host server{net, "dns", IpAddress(8, 8, 8, 8)};
  Link& l = net.add_link(client, server, sim::milliseconds(3));
  client.attach(l);
  server.attach(l);

  DnsZone zone;
  zone.set("example.com", {IpAddress(93, 184, 216, 34)});
  DnsServerApp app{server, zone};
  DnsClient resolver{client, {server.ip(), DnsServerApp::kPort}};

  std::vector<IpAddress> got;
  resolver.resolve("example.com", [&](const auto& ips) {
    got.assign(ips.begin(), ips.end());
  });
  std::vector<IpAddress> missing{IpAddress(1, 1, 1, 1)};  // sentinel
  resolver.resolve("nosuch.example", [&](const auto& ips) {
    missing.assign(ips.begin(), ips.end());
  });
  sim.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], IpAddress(93, 184, 216, 34));
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(app.queries_served(), 2u);
}

TEST(Dns, ZoneUpdatesAreVisible) {
  DnsZone zone;
  zone.set("d", {IpAddress(1, 1, 1, 1)});
  zone.set("d", {IpAddress(2, 2, 2, 2)});
  ASSERT_EQ(zone.lookup("d").size(), 1u);
  EXPECT_EQ(zone.lookup("d")[0], IpAddress(2, 2, 2, 2));
}

TEST(MiddleBox, PassthroughForwardsBothWays) {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  MiddleBox mb{net, "mb"};
  Link& l1 = net.add_link(a, mb, sim::milliseconds(1));
  Link& l2 = net.add_link(mb, b, sim::milliseconds(1));
  a.attach(l1);
  b.attach(l2);
  mb.set_lan_link(l1);
  mb.set_wan_link(l2);

  std::vector<std::pair<Direction, std::uint32_t>> observed;
  mb.add_observer([&](const Packet& p, Direction d) {
    observed.emplace_back(d, p.plain_payload);
  });

  int a_got = 0, b_got = 0;
  a.udp().bind(8, [&](const Packet&) { ++a_got; });
  b.udp().bind(9, [&](const Packet&) { ++b_got; });
  a.udp().send_datagram({a.ip(), 8}, {b.ip(), 9}, 11);
  b.udp().send_datagram({b.ip(), 9}, {a.ip(), 8}, 22);
  sim.run_all();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0].first, Direction::kLanToWan);
  EXPECT_EQ(observed[0].second, 11u);
  EXPECT_EQ(observed[1].first, Direction::kWanToLan);
  EXPECT_EQ(observed[1].second, 22u);
}

TEST(Udp, BindAnyCatchesUnboundPorts) {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Link& l = net.add_link(a, b, sim::milliseconds(1));
  a.attach(l);
  b.attach(l);
  int any = 0, bound = 0;
  b.udp().bind(5, [&](const Packet&) { ++bound; });
  b.udp().bind_any([&](const Packet&) { ++any; });
  a.udp().send_datagram({a.ip(), 1}, {b.ip(), 5}, 1);
  a.udp().send_datagram({a.ip(), 1}, {b.ip(), 6}, 1);
  sim.run_all();
  EXPECT_EQ(bound, 1);
  EXPECT_EQ(any, 1);
}

}  // namespace
}  // namespace vg::net
