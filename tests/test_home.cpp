/// Unit tests for the home substrate: people, devices, PIR sensor, FCM.

#include <gtest/gtest.h>

#include "home/Fcm.h"
#include "home/MobileDevice.h"
#include "home/MotionSensor.h"
#include "home/Person.h"
#include "home/Testbed.h"

namespace vg::home {
namespace {

// ---------------------------------------------------------------------------
// Person
// ---------------------------------------------------------------------------

TEST(Person, PositionInterpolatesDuringWalk) {
  sim::Simulation sim{1};
  Person p{sim, "p", {0, 0, 1.1}};
  p.walk_to({10, 0, 1.1}, 2.0);  // 5 seconds of walking
  EXPECT_TRUE(p.moving());
  sim.run_until(sim::TimePoint{} + sim::from_seconds(2.5));
  const auto mid = p.position();
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_NEAR(p.position().x, 10.0, 1e-9);
  EXPECT_FALSE(p.moving());
}

TEST(Person, FollowPathVisitsWaypointsAndCallsDone) {
  sim::Simulation sim{1};
  Person p{sim, "p", {0, 0, 0}};
  bool done = false;
  p.follow_path({{3, 0, 0}, {3, 4, 0}}, 1.0, [&] { done = true; });
  sim.run_all();
  EXPECT_TRUE(done);
  EXPECT_NEAR(p.position().y, 4.0, 1e-9);
  // Total walk took distance/speed = 7 s.
  EXPECT_NEAR(sim.now().seconds(), 7.0, 1e-6);
}

TEST(Person, NewWalkCancelsPrevious) {
  sim::Simulation sim{1};
  Person p{sim, "p", {0, 0, 0}};
  bool first_done = false, second_done = false;
  p.walk_to({100, 0, 0}, 1.0, [&] { first_done = true; });
  sim.run_until(sim::TimePoint{} + sim::seconds(2));
  p.walk_to({0, 5, 0}, 1.0, [&] { second_done = true; });
  sim.run_all();
  EXPECT_FALSE(first_done);  // superseded
  EXPECT_TRUE(second_done);
  EXPECT_NEAR(p.position().y, 5.0, 1e-9);
}

TEST(Person, TeleportStopsMovement) {
  sim::Simulation sim{1};
  Person p{sim, "p", {0, 0, 0}};
  bool done = false;
  p.walk_to({10, 0, 0}, 1.0, [&] { done = true; });
  sim.run_until(sim::TimePoint{} + sim::seconds(1));
  p.teleport({7, 7, 7});
  sim.run_all();
  EXPECT_FALSE(done);
  EXPECT_FALSE(p.moving());
  EXPECT_NEAR(p.position().z, 7.0, 1e-9);
}

TEST(Person, WalkFromCurrentMidpointPosition) {
  sim::Simulation sim{1};
  Person p{sim, "p", {0, 0, 0}};
  p.walk_to({10, 0, 0}, 1.0);
  sim.run_until(sim::TimePoint{} + sim::seconds(4));
  // Redirect mid-walk: new segment starts at (4,0,0).
  p.walk_to({4, 3, 0}, 1.0);
  sim.run_until(sim.now() + sim::seconds(3));
  EXPECT_NEAR(p.position().x, 4.0, 1e-9);
  EXPECT_NEAR(p.position().y, 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// MotionSensor
// ---------------------------------------------------------------------------

struct SensorFixture : ::testing::Test {
  sim::Simulation sim{3};
  Person p{sim, "p", {-2, 1, 1.5}};
  MotionSensor::Options opts;
  radio::Rect region{0, 0, 2, 2};

  int events = 0;

  void arm(MotionSensor& s) {
    s.watch(p);
    s.subscribe([this] { ++events; });
    s.start();
  }
};

TEST_F(SensorFixture, FiresOncePerCrossing) {
  MotionSensor s{sim, region, opts};
  arm(s);
  p.walk_to({4, 1, 1.5}, 1.0);  // crosses the region once
  sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_EQ(events, 1);
  EXPECT_EQ(s.activations(), 1u);
}

TEST_F(SensorFixture, StationaryPersonInsideDoesNotFire) {
  p.teleport({1, 1, 1.5});
  MotionSensor s{sim, region, opts};
  arm(s);
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_EQ(events, 0);
}

TEST_F(SensorFixture, SecondCrossingAfterCooldownFires) {
  MotionSensor s{sim, region, opts};
  arm(s);
  p.walk_to({4, 1, 1.5}, 1.0, [this] {
    sim.after(sim::seconds(5), [this] { p.walk_to({-2, 1, 1.5}, 1.0); });
  });
  sim.run_until(sim::TimePoint{} + sim::seconds(30));
  EXPECT_EQ(events, 2);
}

TEST_F(SensorFixture, ZRangeFiltersOtherFloors) {
  MotionSensor::Options zopts;
  zopts.z_min = 1.0;
  zopts.z_max = 3.0;
  MotionSensor s{sim, region, zopts};
  arm(s);
  // Person "walks across the stairwell footprint" on the upper floor.
  p.teleport({-2, 1, 3.9});
  p.walk_to({4, 1, 3.9}, 1.0);
  sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_EQ(events, 0);
  // Now through the covered band.
  p.teleport({-2, 1, 2.0});
  p.walk_to({4, 1, 2.0}, 1.0);
  sim.run_until(sim.now() + sim::seconds(10));
  EXPECT_EQ(events, 1);
}

TEST_F(SensorFixture, TriggerLatencyDelaysEvent) {
  MotionSensor s{sim, region, opts};
  s.watch(p);
  sim::TimePoint fired;
  s.subscribe([&] { fired = sim.now(); });
  s.start();
  p.walk_to({4, 1, 1.5}, 2.0);  // enters region at t=1s
  sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_GE((fired - sim::TimePoint{}).seconds(), 1.0 + 0.35 - 0.05);
}

// ---------------------------------------------------------------------------
// MobileDevice
// ---------------------------------------------------------------------------

TEST(MobileDevice, PutDownOverridesCarrier) {
  sim::Simulation sim{5};
  Testbed tb = Testbed::two_floor_house();
  Person owner{sim, "o", tb.location(1).pos};
  MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "phone",
                     [&] { return owner.position(); }};
  EXPECT_FALSE(phone.is_placed());
  phone.put_down(tb.location(33).pos);
  owner.teleport(tb.location(5).pos);
  EXPECT_TRUE(phone.is_placed());
  EXPECT_NEAR(phone.position().x, tb.location(33).pos.x, 1e-9);
  phone.pick_up();
  EXPECT_NEAR(phone.position().x, tb.location(5).pos.x, 1e-9);
}

TEST(MobileDevice, MeasureRequestIncludesScanAndUplinkLatency) {
  sim::Simulation sim{5};
  Testbed tb = Testbed::two_floor_house();
  Person owner{sim, "o", tb.location(1).pos};
  MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "phone",
                     [&] { return owner.position(); }};
  radio::BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  sim::TimePoint reported;
  double rssi = 0;
  phone.handle_measure_request(beacon, [&](double r) {
    rssi = r;
    reported = sim.now();
  });
  sim.run_all();
  const double t = (reported - sim::TimePoint{}).seconds();
  EXPECT_GE(t, 0.2 + 0.04);  // scan min + uplink min
  EXPECT_LE(t, 0.9 + 0.18);
  EXPECT_LT(rssi, 5.0);
  EXPECT_GT(rssi, -20.0);
}

TEST(MobileDevice, TokenDerivedFromName) {
  sim::Simulation sim{5};
  Testbed tb = Testbed::apartment();
  Person owner{sim, "o", tb.location(1).pos};
  MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "pixel-5",
                     [&] { return owner.position(); }};
  EXPECT_EQ(phone.fcm_token(), "fcm:pixel-5");
}

// ---------------------------------------------------------------------------
// FCM
// ---------------------------------------------------------------------------

TEST(Fcm, DeliversPayloadToRegisteredDevice) {
  sim::Simulation sim{7};
  FcmService fcm{sim};
  std::string got;
  fcm.register_device("tok", [&](const std::string& p) { got = p; });
  fcm.push("tok", "measure:42");
  sim.run_all();
  EXPECT_EQ(got, "measure:42");
}

TEST(Fcm, ReRegistrationReplacesHandler) {
  sim::Simulation sim{7};
  FcmService fcm{sim};
  int first = 0, second = 0;
  fcm.register_device("tok", [&](const std::string&) { ++first; });
  fcm.register_device("tok", [&](const std::string&) { ++second; });
  fcm.push("tok", "x");
  sim.run_all();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Fcm, InFlightPushUsesHandlerAtSendTime) {
  sim::Simulation sim{7};
  FcmService fcm{sim};
  int first = 0, second = 0;
  fcm.register_device("tok", [&](const std::string&) { ++first; });
  fcm.push("tok", "x");
  // Re-register while the push is in flight: the in-flight push was already
  // addressed to the old app instance.
  fcm.register_device("tok", [&](const std::string&) { ++second; });
  sim.run_all();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
}

}  // namespace
}  // namespace vg::home
