/// Property-based tests: invariants that must hold across randomized inputs,
/// swept with parameterized gtest suites.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/Stats.h"
#include "home/Testbed.h"
#include "netsim/Host.h"
#include "radio/Propagation.h"
#include "simcore/EventQueue.h"
#include "simcore/Simulation.h"
#include "speaker/TrafficPatterns.h"
#include "voiceguard/Recognizer.h"
#include "workload/Corpus.h"

namespace vg {
namespace {

// ---------------------------------------------------------------------------
// Event queue vs a reference model, under random schedule/cancel interleaving.
// ---------------------------------------------------------------------------

class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, MatchesReferenceModel) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("p");
  sim::EventQueue q;
  // Reference: multimap time -> id, plus fired order check.
  std::multimap<std::int64_t, std::uint64_t> model;
  std::map<std::uint64_t, sim::EventId> handles;
  std::uint64_t next_tag = 1;
  std::vector<std::uint64_t> fired;

  for (int step = 0; step < 600; ++step) {
    const double x = rng.uniform();
    if (x < 0.55) {
      const std::int64_t t = rng.uniform_int(0, 10'000);
      const std::uint64_t tag = next_tag++;
      handles[tag] = q.schedule(sim::TimePoint{t},
                                [tag, &fired] { fired.push_back(tag); });
      model.emplace(t, tag);
    } else if (x < 0.75 && !model.empty()) {
      // Cancel a random pending event.
      auto it = model.begin();
      std::advance(it, rng.uniform_int(0, static_cast<std::int64_t>(model.size()) - 1));
      q.cancel(handles[it->second]);
      model.erase(it);
    } else if (!q.empty()) {
      ASSERT_FALSE(model.empty());
      // Reference: among the earliest time, FIFO by tag (insertion order is
      // monotone in tag for equal times only if inserted in order — the
      // multimap preserves insertion order for equal keys).
      const auto fired_before = fired.size();
      const sim::TimePoint expect_t = sim::TimePoint{model.begin()->first};
      ASSERT_EQ(q.next_time(), expect_t);
      q.pop().cb();
      ASSERT_EQ(fired.size(), fired_before + 1);
      ASSERT_EQ(fired.back(), model.begin()->second);
      model.erase(model.begin());
    }
  }
  EXPECT_EQ(q.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// TCP byte-stream conservation under random record batches.
// ---------------------------------------------------------------------------

class TcpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpProperty, AllRecordsArriveInOrderAndCounted) {
  sim::Simulation sim{GetParam()};
  net::Network net{sim};
  net::Host a{net, "a", net::IpAddress(10, 0, 0, 1)};
  net::Host b{net, "b", net::IpAddress(10, 0, 0, 2)};
  net::Link& l = net.add_link(a, b, sim::milliseconds(4), sim::milliseconds(2));
  a.attach(l);
  b.attach(l);

  std::vector<std::uint64_t> received;
  std::uint64_t received_bytes = 0;
  b.tcp().listen(443, [&](net::TcpConnection& c) {
    net::TcpCallbacks cbs;
    cbs.on_record = [&](const net::TlsRecord& r) {
      received.push_back(r.tls_seq);
      received_bytes += r.length;
    };
    c.set_callbacks(std::move(cbs));
  });

  net::TcpConnection& cc =
      a.tcp().connect(net::Endpoint{b.ip(), 443}, net::TcpCallbacks{});
  auto& rng = sim.rng("prop");
  std::uint64_t seq = 0;
  std::uint64_t sent_bytes = 0;
  // Random batches at jittered but monotone send times (stream order is the
  // application's responsibility), including writes before establishment.
  sim::Duration when{0};
  for (int batch = 0; batch < 30; ++batch) {
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<net::TlsRecord> rs;
    for (int i = 0; i < n; ++i) {
      net::TlsRecord r;
      r.length = static_cast<std::uint32_t>(rng.uniform_int(1, 1500));
      r.tls_seq = seq++;
      sent_bytes += r.length;
      rs.push_back(r);
    }
    when += sim::milliseconds(rng.uniform_int(0, 40));
    sim.after(when, [&cc, rs = std::move(rs)]() mutable {
      cc.send_records(std::move(rs));
    });
  }
  sim.run_until(sim::TimePoint{} + sim::seconds(30));

  ASSERT_EQ(received.size(), static_cast<std::size_t>(seq));
  for (std::uint64_t i = 0; i < seq; ++i) EXPECT_EQ(received[i], i);
  EXPECT_EQ(received_bytes, sent_bytes);
  EXPECT_EQ(cc.bytes_sent(), sent_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Recognizer/generator agreement across many seeds (the Table I property).
// ---------------------------------------------------------------------------

class PatternProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternProperty, RegularPhase1AlwaysCommand) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("p1");
  speaker::Phase1Options opts;
  opts.irregular_prob = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto p = speaker::gen_phase1_prefix(rng, opts);
    ASSERT_GE(p.size(), 5u);
    EXPECT_EQ(guard::classify_spike(p), guard::SpikeClass::kCommand);
  }
}

TEST_P(PatternProperty, Phase2AlwaysResponseNeverCommand) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("p2");
  for (int i = 0; i < 500; ++i) {
    const auto p = speaker::gen_phase2_prefix(rng);
    EXPECT_EQ(guard::classify_spike(p), guard::SpikeClass::kResponse);
  }
}

TEST_P(PatternProperty, PrefixLengthsArePlausiblePacketSizes) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("p3");
  for (int i = 0; i < 200; ++i) {
    for (const auto& p :
         {speaker::gen_phase1_prefix(rng), speaker::gen_phase2_prefix(rng)}) {
      for (std::uint32_t len : p) {
        EXPECT_GE(len, 20u);
        EXPECT_LE(len, 1500u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77));

// ---------------------------------------------------------------------------
// Radio propagation invariants over all three testbeds.
// ---------------------------------------------------------------------------

struct TestbedCase {
  const char* name;
  home::Testbed (*make)();
};

class RadioProperty : public ::testing::TestWithParam<TestbedCase> {};

TEST_P(RadioProperty, MeanRssiIsSymmetric) {
  const home::Testbed tb = GetParam().make();
  const radio::PathLossParams p{};
  const auto& locs = tb.locations();
  for (std::size_t i = 0; i < locs.size(); i += 7) {
    for (std::size_t j = i + 3; j < locs.size(); j += 11) {
      EXPECT_NEAR(radio::mean_rssi(tb.plan(), p, locs[i].pos, locs[j].pos),
                  radio::mean_rssi(tb.plan(), p, locs[j].pos, locs[i].pos),
                  1e-9);
    }
  }
}

TEST_P(RadioProperty, LegitimateAreaBeatsWalledOffLocations) {
  // The property the whole scheme rests on: the minimum RSSI inside the
  // legitimate command area exceeds the maximum RSSI at any heavily
  // walled-off (2+ wall crossings) location. The area is the speaker's room
  // in the homes and the cubicle-bay box around the speaker in the office.
  const home::Testbed tb = GetParam().make();
  const radio::PathLossParams& p = tb.radio_params();
  const bool office = tb.name() == "office";
  for (int dep = 1; dep <= 2; ++dep) {
    const radio::Vec3 spk = tb.speaker_position(dep);
    const std::string& room = tb.speaker_room(dep);
    double worst_in = 1e9, best_far = -1e9;
    for (const auto& loc : tb.locations()) {
      const double r = radio::mean_rssi(tb.plan(), p, spk, loc.pos);
      const bool in_area =
          office ? (std::abs(loc.pos.x - spk.x) <= 2.3 &&
                    std::abs(loc.pos.y - spk.y) <= 2.3)
                 : loc.room == room;
      if (in_area) {
        worst_in = std::min(worst_in, r);
      } else if (tb.plan().wall_attenuation(spk, loc.pos) >= 5.5) {
        best_far = std::max(best_far, r);
      }
    }
    EXPECT_GT(worst_in, best_far + 1.0)
        << GetParam().name << " deployment " << dep;
  }
}

TEST_P(RadioProperty, EveryLocationHasFiniteSaneRssi) {
  const home::Testbed tb = GetParam().make();
  const radio::PathLossParams p{};
  for (int dep = 1; dep <= 2; ++dep) {
    const radio::Vec3 spk = tb.speaker_position(dep);
    for (const auto& loc : tb.locations()) {
      const double r = radio::mean_rssi(tb.plan(), p, spk, loc.pos);
      EXPECT_GT(r, -60.0) << loc.number;
      EXPECT_LT(r, 10.0) << loc.number;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Testbeds, RadioProperty,
    ::testing::Values(TestbedCase{"house", &home::Testbed::two_floor_house},
                      TestbedCase{"apartment", &home::Testbed::apartment},
                      TestbedCase{"office", &home::Testbed::office}),
    [](const ::testing::TestParamInfo<TestbedCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Rng distribution sanity across seeds.
// ---------------------------------------------------------------------------

class RngProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngProperty, ExponentialMeanConverges) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("e");
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential_mean(7.5);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 7.5, 0.4);
}

TEST_P(RngProperty, LognormalIsPositiveWithMedianExpMu) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("l");
  std::vector<double> vs;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(-0.43, 0.38);
    ASSERT_GT(v, 0.0);
    vs.push_back(v);
  }
  EXPECT_NEAR(analysis::percentile(vs, 50), std::exp(-0.43), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty, ::testing::Values(3, 14, 159, 265));

// ---------------------------------------------------------------------------
// Regression round-trip: fit recovers arbitrary lines under permutations.
// ---------------------------------------------------------------------------

class RegressionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegressionProperty, RecoversRandomLinesExactly) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("r");
  for (int k = 0; k < 50; ++k) {
    const double slope = rng.uniform(-3, 3);
    const double icpt = rng.uniform(-30, 5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 40; ++i) {
      const double x = rng.uniform(0, 8);
      xs.push_back(x);
      ys.push_back(slope * x + icpt);
    }
    const auto f = analysis::linear_regression(xs, ys);
    EXPECT_NEAR(f.slope, slope, 1e-7);
    EXPECT_NEAR(f.intercept, icpt, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegressionProperty, ::testing::Values(1, 9, 81));

// ---------------------------------------------------------------------------
// Corpus invariants.
// ---------------------------------------------------------------------------

TEST(CorpusProperty, CommandsAreNonEmptyAndDistinctish) {
  for (const auto* c :
       {&workload::CommandCorpus::alexa(), &workload::CommandCorpus::google()}) {
    std::set<std::string> uniq;
    for (const auto& s : c->commands()) {
      ASSERT_FALSE(s.empty());
      uniq.insert(s);
    }
    // Padding reuses suffixes, so not all 320/443 are unique, but the corpus
    // must not be one command repeated.
    EXPECT_GT(uniq.size(), c->size() / 3);
  }
}

// ---------------------------------------------------------------------------
// Packet invariants: length accounting, and allocator-independence of every
// observable field (the arena must be invisible above the allocation layer).
// ---------------------------------------------------------------------------

class PacketProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketProperty, PayloadLengthIsSumOfRecordsPlusPlain) {
  sim::RngRegistry reg{GetParam()};
  auto& rng = reg.stream("packet");
  for (int trial = 0; trial < 200; ++trial) {
    net::Packet p;
    const auto n = rng.uniform_int(0, 12);
    std::uint64_t expect = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      net::TlsRecord r;
      r.length = static_cast<std::uint32_t>(rng.uniform_int(0, 17'000));
      r.tls_seq = static_cast<std::uint64_t>(i);
      expect += r.length;
      p.records.push_back(r);
    }
    p.plain_payload = static_cast<std::uint32_t>(rng.uniform_int(0, 2'000));
    expect += p.plain_payload;
    ASSERT_EQ(p.payload_length(), expect);
  }
}

TEST_P(PacketProperty, ArenaAndHeapPacketsAreFieldEqual) {
  sim::Simulation arena_sim{GetParam()};
  sim::Simulation heap_sim{GetParam(), sim::Simulation::Options{/*use_arena=*/false}};
  ASSERT_NE(arena_sim.arena_ptr(), nullptr);
  ASSERT_EQ(heap_sim.arena_ptr(), nullptr);

  sim::RngRegistry reg{GetParam() * 31 + 7};
  auto& rng = reg.stream("fields");
  for (int trial = 0; trial < 100; ++trial) {
    net::Packet a = arena_sim.make<net::Packet>();
    net::Packet h = heap_sim.make<net::Packet>();
    ASSERT_EQ(a.records.get_allocator().arena(), arena_sim.arena_ptr());
    ASSERT_EQ(h.records.get_allocator().arena(), nullptr);

    // One draw per field, applied to both packets identically.
    auto fill = [&rng](net::Packet& p) {
      p.id = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
      p.src = {net::IpAddress(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 250))),
               static_cast<std::uint16_t>(rng.uniform_int(1024, 65'000))};
      p.dst = {net::IpAddress(52, 94, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 250))),
               static_cast<std::uint16_t>(rng.uniform_int(1, 1024))};
      p.protocol = rng.uniform() < 0.5 ? net::Protocol::kTcp : net::Protocol::kUdp;
      p.quic = p.protocol == net::Protocol::kUdp && rng.uniform() < 0.5;
      p.keepalive_probe = p.protocol == net::Protocol::kTcp && rng.uniform() < 0.1;
      p.tcp.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      p.tcp.ack = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      if (rng.uniform() < 0.5) p.tcp.flags.set(net::TcpFlag::kAck);
      if (rng.uniform() < 0.1) p.tcp.flags.set(net::TcpFlag::kPsh);
      const auto n = rng.uniform_int(0, 6);
      for (std::int64_t i = 0; i < n; ++i) {
        net::TlsRecord r;
        r.length = static_cast<std::uint32_t>(rng.uniform_int(1, 16'384));
        r.tls_seq = static_cast<std::uint64_t>(i);
        r.tag = (i % 2 == 0) ? "voice-audio" : "response";
        p.records.push_back(r);
      }
      p.plain_payload = static_cast<std::uint32_t>(rng.uniform_int(0, 1'400));
    };
    // Identical draws for both: rewind by using two packets per loop with a
    // forked value sequence is overkill — just draw once into a template.
    net::Packet tmpl;
    fill(tmpl);
    auto apply = [&tmpl](net::Packet& p) {
      p.id = tmpl.id;
      p.src = tmpl.src;
      p.dst = tmpl.dst;
      p.protocol = tmpl.protocol;
      p.quic = tmpl.quic;
      p.keepalive_probe = tmpl.keepalive_probe;
      p.tcp = tmpl.tcp;
      for (const auto& r : tmpl.records) p.records.push_back(r);
      p.plain_payload = tmpl.plain_payload;
    };
    apply(a);
    apply(h);

    EXPECT_EQ(a.payload_length(), h.payload_length());
    EXPECT_EQ(a.summary(), h.summary());
    ASSERT_EQ(a.records.size(), h.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].type, h.records[i].type);
      EXPECT_EQ(a.records[i].length, h.records[i].length);
      EXPECT_EQ(a.records[i].tls_seq, h.records[i].tls_seq);
      EXPECT_EQ(a.records[i].tag, h.records[i].tag);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketProperty, ::testing::Values(2, 71, 828));

}  // namespace
}  // namespace vg

namespace vg {
namespace {

/// Random-position leak sweep: no occupiable spot outside the speaker's room
/// (homes) may out-measure the in-room minimum — the property the RSSI
/// threshold depends on, checked beyond the numbered grid locations.
class LeakProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LeakProperty, NoRandomSpotOutsideRoomBeatsInRoomMinimum) {
  const auto [deployment, seed] = GetParam();
  for (auto make : {&home::Testbed::two_floor_house, &home::Testbed::apartment}) {
    const home::Testbed tb = make();
    const radio::PathLossParams& p = tb.radio_params();
    const radio::Vec3 spk = tb.speaker_position(deployment);
    const std::string& room_name = tb.speaker_room(deployment);
    const auto* room = tb.plan().room_by_name(room_name);

    double worst_in = 1e9;
    for (const auto& loc : tb.locations()) {
      if (loc.room == room_name) {
        worst_in =
            std::min(worst_in, radio::mean_rssi(tb.plan(), p, spk, loc.pos));
      }
    }

    sim::RngRegistry reg{seed};
    auto& rng = reg.stream("leak");
    int leaks = 0;
    for (const auto& r : tb.plan().rooms()) {
      if (r.name == room_name) continue;
      // The house's known intentional holes: the hallway LoS fan and the
      // rooms directly above the speaker (handled by the floor tracker).
      const bool house = tb.name() == "two-floor house";
      if (house && r.floor != tb.plan().floor_of(spk.z)) continue;
      if (house && r.name == "hallway") continue;
      for (int k = 0; k < 150; ++k) {
        const radio::Vec3 pos{rng.uniform(r.bounds.x0 + 0.4, r.bounds.x1 - 0.4),
                              rng.uniform(r.bounds.y0 + 0.4, r.bounds.y1 - 0.4),
                              tb.plan().device_height(r.floor)};
        if (radio::mean_rssi(tb.plan(), p, spk, pos) >= worst_in) ++leaks;
      }
    }
    EXPECT_EQ(leaks, 0) << tb.name() << " deployment " << deployment
                        << " (in-room min " << worst_in << ", room "
                        << room->name << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeakProperty,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(5ull, 6ull)));

}  // namespace
}  // namespace vg
