#include <gtest/gtest.h>

#include "workload/Experiment.h"

namespace vg::workload {
namespace {

/// A shortened (20-hour) version of the §V-B3 protocol. The full 7-day runs
/// live in the bench binaries; this guards the machinery and the headline
/// quality bar.
TEST(Experiment, ShortRunReproducesPaperShape) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kHouse;
  cfg.speaker = WorldConfig::SpeakerType::kEchoDot;
  cfg.owner_count = 2;
  cfg.seed = 2023;
  SmartHomeWorld world{cfg};
  world.calibrate();

  ExperimentConfig ecfg;
  ecfg.duration = sim::hours(20);
  ecfg.episode_mean = sim::minutes(18);
  ExperimentDriver driver{world, ecfg};
  driver.run();

  ASSERT_GE(driver.outcomes().size(), 25u);
  EXPECT_GT(driver.legit_issued(), 10u);
  EXPECT_GT(driver.malicious_issued(), 5u);

  const auto m = driver.confusion();
  // Paper headline: accuracy > 97 %, recall ~100 %. A short run has few
  // samples, so require a slightly softer bar.
  EXPECT_GE(m.accuracy(), 0.90) << m.to_string();
  EXPECT_GE(m.recall(), 0.90) << m.to_string();
  // Owners were rarely blocked.
  EXPECT_LE(m.fp, m.tn / 5 + 2) << m.to_string();
}

TEST(Experiment, OutcomesCarryGroundTruth) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kApartment;
  cfg.speaker = WorldConfig::SpeakerType::kEchoDot;
  cfg.owner_count = 1;
  cfg.seed = 5;
  SmartHomeWorld world{cfg};
  world.calibrate();

  ExperimentConfig ecfg;
  ecfg.duration = sim::hours(6);
  ecfg.episode_mean = sim::minutes(15);
  ExperimentDriver driver{world, ecfg};
  driver.run();

  ASSERT_FALSE(driver.outcomes().empty());
  for (const auto& o : driver.outcomes()) {
    EXPECT_GT(o.id, 0u);
    EXPECT_FALSE(o.issuer.empty());
    if (o.malicious) {
      EXPECT_EQ(o.issuer, "attacker");
    } else {
      EXPECT_NE(o.issuer, "attacker");
    }
  }
  EXPECT_EQ(driver.outcomes().size(),
            driver.legit_issued() + driver.malicious_issued());
}

}  // namespace
}  // namespace vg::workload

namespace vg::workload {
namespace {

TEST(Experiment, DeterministicForFixedSeed) {
  auto run_once = [] {
    WorldConfig cfg;
    cfg.testbed = WorldConfig::TestbedKind::kApartment;
    cfg.owner_count = 1;
    cfg.seed = 77;
    SmartHomeWorld world{cfg};
    world.calibrate();
    ExperimentConfig ecfg;
    ecfg.duration = sim::hours(6);
    ecfg.episode_mean = sim::minutes(15);
    ExperimentDriver driver{world, ecfg};
    driver.run();
    std::vector<std::tuple<std::uint64_t, bool, bool>> out;
    for (const auto& o : driver.outcomes()) {
      out.emplace_back(o.id, o.malicious, o.executed);
    }
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Experiment, NightRoutineKeepsOwnersOutOfTheLegitAreaOvernight) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kHouse;
  cfg.deployment = 2;
  cfg.owner_count = 2;
  cfg.seed = 88;
  SmartHomeWorld world{cfg};
  world.calibrate();

  ExperimentConfig ecfg;
  ecfg.duration = sim::days(1);
  ecfg.episode_mean = sim::minutes(25);
  ecfg.night_routine = true;
  ExperimentDriver driver{world, ecfg};
  driver.run();

  // Every night outcome is an attack (owners sleep), and the owners were
  // upstairs/away at issue time.
  int night_outcomes = 0;
  for (const auto& o : driver.outcomes()) {
    const double hour = std::fmod(o.when.seconds() / 3600.0, 24.0);
    if (hour >= 23.0 || hour < 7.0) {
      ++night_outcomes;
      EXPECT_TRUE(o.malicious) << "night command from " << o.issuer;
    }
  }
  EXPECT_EQ(driver.night_attacks(), static_cast<std::uint64_t>(night_outcomes));
  // The daytime protocol still ran.
  EXPECT_GT(driver.legit_issued(), 0u);
}

TEST(Experiment, AttackPolicyNeverFiresWithOwnerInLegitArea) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kApartment;
  cfg.owner_count = 2;
  cfg.seed = 91;
  SmartHomeWorld world{cfg};
  world.calibrate();

  ExperimentConfig ecfg;
  ecfg.duration = sim::hours(12);
  ecfg.episode_mean = sim::minutes(12);
  ExperimentDriver driver{world, ecfg};
  driver.run();

  // The recorded whereabouts of malicious commands never include the
  // speaker's room.
  const std::string& room =
      world.testbed().speaker_room(world.config().deployment);
  for (const auto& o : driver.outcomes()) {
    if (!o.malicious) continue;
    EXPECT_EQ(o.owner_whereabouts.find(room), std::string::npos)
        << o.owner_whereabouts;
  }
}

}  // namespace
}  // namespace vg::workload
