#include <gtest/gtest.h>

#include "workload/World.h"

namespace vg::workload {
namespace {

speaker::CommandSpec make_cmd(std::uint64_t id, int words = 6) {
  speaker::CommandSpec c;
  c.id = id;
  c.text = "integration test command";
  c.words = words;
  return c;
}

/// Shared calibrated world: calibration (threshold walks + 2x65 training
/// traces) is expensive, so the Echo/house world is built once.
class HouseWorldTest : public ::testing::Test {
 protected:
  static SmartHomeWorld& world() {
    static SmartHomeWorld* w = [] {
      WorldConfig cfg;
      cfg.testbed = WorldConfig::TestbedKind::kHouse;
      cfg.speaker = WorldConfig::SpeakerType::kEchoDot;
      cfg.owner_count = 2;
      cfg.seed = 3;
      auto* world = new SmartHomeWorld(cfg);
      world->calibrate();
      return world;
    }();
    return *w;
  }

  static std::uint64_t next_id() {
    static std::uint64_t id = 1000;
    return ++id;
  }

  /// Issues a command and waits for the dust to settle.
  static bool issue_and_check(std::uint64_t id) {
    world().hear_command(make_cmd(id));
    world().run_for(sim::seconds(55));
    return world().command_executed(id);
  }
};

TEST_F(HouseWorldTest, CalibrationLearnsSaneThresholds) {
  auto& w = world();
  for (int i = 0; i < w.owner_count(); ++i) {
    // The paper's app set -8 for this room; we learned our own walk minimum.
    EXPECT_LT(w.learned_threshold(i), -4.0) << "device " << i;
    EXPECT_GT(w.learned_threshold(i), -12.0) << "device " << i;
    ASSERT_NE(w.floor_tracker(i), nullptr);
    EXPECT_TRUE(w.floor_tracker(i)->trained());
  }
  EXPECT_EQ(w.guard().tracked_avs_ip(), w.cloud().current_avs_ip());
}

TEST_F(HouseWorldTest, OwnerNearSpeakerIsServed) {
  auto& w = world();
  const radio::Vec3 spk = w.testbed().speaker_position(1);
  w.owner(0).teleport({spk.x - 1.2, spk.y + 0.8, 1.1});
  w.owner(1).teleport({spk.x - 2.0, spk.y + 1.5, 1.1});
  const std::uint64_t id = next_id();
  EXPECT_TRUE(issue_and_check(id));
}

TEST_F(HouseWorldTest, AttackWithOwnersInKitchenIsBlocked) {
  auto& w = world();
  w.owner(0).teleport(w.location_pos(33));
  w.owner(1).teleport(w.location_pos(35));
  w.attacker().teleport({10.5, 1.5, 1.1});  // in the speaker room
  const std::uint64_t id = next_id();
  EXPECT_FALSE(issue_and_check(id));
  EXPECT_GE(w.guard().commands_blocked(), 1u);
  // Reconnect completes before the next test issues a command.
  w.run_for(sim::seconds(20));
}

TEST_F(HouseWorldTest, AttackWithOwnersOutsideIsBlocked) {
  auto& w = world();
  w.owner(0).teleport({-4, -3, 1.1});
  w.owner(1).teleport({-5, -2, 1.1});
  const std::uint64_t id = next_id();
  EXPECT_FALSE(issue_and_check(id));
  w.run_for(sim::seconds(20));
}

TEST_F(HouseWorldTest, SecondOwnerNearbySufficesInMultiUserMode) {
  auto& w = world();
  const radio::Vec3 spk = w.testbed().speaker_position(1);
  w.owner(0).teleport({-4, -3, 1.1});                    // away
  w.owner(1).teleport({spk.x - 1.5, spk.y + 1.0, 1.1});  // near
  const std::uint64_t id = next_id();
  EXPECT_TRUE(issue_and_check(id));
}

TEST_F(HouseWorldTest, OverheadRoomAttackBlockedByFloorTracker) {
  auto& w = world();
  // Both owners end up in the study — directly above the speaker, where raw
  // RSSI stays above the threshold — by *walking up the stairs*, which the
  // motion sensor sees and the floor tracker classifies.
  for (int i = 0; i < 2; ++i) {
    bool arrived = false;
    w.move_person(w.owner(i), w.location_pos(55 + i),
                  [&arrived] { arrived = true; });
    w.run_until([&arrived] { return arrived; }, sim::minutes(3));
    ASSERT_TRUE(arrived);
    w.run_for(sim::seconds(12));  // let the stair trace finish classifying
  }
  ASSERT_FALSE(w.floor_tracker(0)->owner_on_speaker_floor());
  ASSERT_FALSE(w.floor_tracker(1)->owner_on_speaker_floor());

  const std::uint64_t id = next_id();
  EXPECT_FALSE(issue_and_check(id));

  // They come back down; commands work again.
  w.run_for(sim::seconds(20));
  const radio::Vec3 spk = w.testbed().speaker_position(1);
  bool back = false;
  w.move_person(w.owner(0), {spk.x - 1.2, spk.y + 1.0, 1.1},
                [&back] { back = true; });
  w.run_until([&back] { return back; }, sim::minutes(3));
  ASSERT_TRUE(back);
  w.run_for(sim::seconds(12));
  EXPECT_TRUE(w.floor_tracker(0)->owner_on_speaker_floor());
  const std::uint64_t id2 = next_id();
  EXPECT_TRUE(issue_and_check(id2));
}

TEST(WorldConfigs, ApartmentGhmWorldServesAndBlocks) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kApartment;
  cfg.speaker = WorldConfig::SpeakerType::kGoogleHomeMini;
  cfg.owner_count = 1;
  cfg.seed = 9;
  SmartHomeWorld w{cfg};
  w.calibrate();

  const radio::Vec3 spk = w.testbed().speaker_position(1);
  w.owner(0).teleport({spk.x - 1.5, spk.y + 1.0, 1.1});
  w.hear_command(make_cmd(1, 7));
  w.run_for(sim::seconds(55));
  EXPECT_TRUE(w.command_executed(1));

  w.owner(0).teleport(w.location_pos(25));  // kitchen, away from living room
  w.hear_command(make_cmd(2, 7));
  w.run_for(sim::seconds(55));
  EXPECT_FALSE(w.command_executed(2));
}

TEST(WorldConfigs, OfficeWatchWorldServesAndBlocks) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kOffice;
  cfg.speaker = WorldConfig::SpeakerType::kEchoDot;
  cfg.owner_count = 1;
  cfg.use_watch = true;
  cfg.seed = 17;
  SmartHomeWorld w{cfg};
  w.calibrate();

  const radio::Vec3 spk = w.testbed().speaker_position(1);
  w.owner(0).teleport({spk.x + 1.5, spk.y - 1.0, 1.5});
  w.hear_command(make_cmd(1, 6));
  w.run_for(sim::seconds(55));
  EXPECT_TRUE(w.command_executed(1));

  w.owner(0).teleport(w.location_pos(65));  // break room, behind walls
  w.hear_command(make_cmd(2, 6));
  w.run_for(sim::seconds(55));
  EXPECT_FALSE(w.command_executed(2));
}

}  // namespace
}  // namespace vg::workload
