/// Guard-box edge cases: holds interleaved with heartbeats, flow death while
/// a verdict is pending, information-rule conformance, Google session reuse.

#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "speaker/EchoDot.h"
#include "speaker/GoogleHomeMini.h"
#include "voiceguard/GuardBox.h"

namespace vg {
namespace {

using net::IpAddress;

cloud::CloudFarm::Options no_migration() {
  cloud::CloudFarm::Options o;
  o.avs_migration_mean = sim::Duration{0};
  return o;
}

struct GuardWorld {
  sim::Simulation sim{23};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, no_migration()};
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};
  guard::FixedDecisionModule decision;
  guard::GuardBox guard;

  explicit GuardWorld(bool verdict, sim::Duration latency)
      : decision(sim, verdict, latency),
        guard(net, "guard", decision, [] {
          guard::GuardBox::Options o;
          o.speaker_ips = {IpAddress(192, 168, 1, 200)};
          return o;
        }()) {
    net::Link& lan = net.add_link(speaker_host, guard, sim::milliseconds(2));
    speaker_host.attach(lan);
    guard.set_lan_link(lan);
    net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
    guard.set_wan_link(up);
    router.add_route(speaker_host.ip(), up);
  }

  speaker::CommandSpec cmd(std::uint64_t id, int words = 6) {
    speaker::CommandSpec c;
    c.id = id;
    c.words = words;
    return c;
  }
  void run_to(double s) { sim.run_until(sim::TimePoint{} + sim::from_seconds(s)); }
};

speaker::EchoDotModel::Options regular_echo() {
  speaker::EchoDotModel::Options o;
  o.phase1.irregular_prob = 0.0;
  o.misc_connection_mean = sim::Duration{0};
  return o;
}

TEST(GuardEdge, HeartbeatDuringHoldPreservesStreamOrder) {
  // A long hold (25 s) spans a heartbeat tick; the heartbeat record must be
  // buffered behind the held command so that releasing keeps TLS sequence
  // order — no violation, command executes.
  GuardWorld w{true, sim::seconds(25)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(120);
  EXPECT_EQ(w.farm.total_sequence_violations(), 0u);
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  ASSERT_FALSE(echo.interactions().empty());
  EXPECT_TRUE(echo.interactions()[0].response_received);
}

TEST(GuardEdge, HeartbeatsStillFlowDuringPassState) {
  GuardWorld w{true, sim::milliseconds(400)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::minutes(3));
  EXPECT_GE(w.farm.avs_app(0).heartbeats_received(), 4u);
}

TEST(GuardEdge, SpikeEventsCarryOnlyObservableData) {
  // Information rule: the recorded spike prefixes are packet lengths the
  // middlebox could see — within TLS record size bounds, no tags.
  GuardWorld w{true, sim::milliseconds(500)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  echo.hear_command(w.cmd(1));
  w.run_to(60);
  ASSERT_FALSE(w.guard.spike_events().empty());
  for (const auto& ev : w.guard.spike_events()) {
    EXPECT_LE(ev.prefix.size(), 8u);
    for (std::uint32_t len : ev.prefix) {
      EXPECT_GT(len, 0u);
      EXPECT_LE(len, 16 * 1024u);
    }
  }
}

TEST(GuardEdge, GuardSourceDoesNotReadRecordTags) {
  // Static conformance check on the guard's implementation: it must never
  // touch TlsRecord::tag (the encrypted payload stand-in). This is enforced
  // by review + this canary: a command whose records carry misleading tags
  // is still recognized purely by lengths. (The speaker model cannot send
  // custom tags per record from here, so assert on the recognizer instead:
  // classification uses lengths only by construction of classify_spike.)
  const auto cls = guard::classify_spike({277, 131, 277, 131, 113});
  EXPECT_EQ(cls, guard::SpikeClass::kCommand);
}

TEST(GuardEdge, ConsecutiveCommandsEachHeldOnce) {
  GuardWorld w{true, sim::milliseconds(900)};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  w.run_to(10);
  for (int i = 0; i < 5; ++i) {
    echo.hear_command(w.cmd(static_cast<std::uint64_t>(i + 1)));
    w.sim.run_until(w.sim.now() + sim::seconds(40));
  }
  EXPECT_EQ(w.farm.all_executed().size(), 5u);
  EXPECT_EQ(w.guard.commands_released(), 5u);
  EXPECT_EQ(w.decision.queries(), 5u);
  EXPECT_EQ(w.guard.commands_blocked(), 0u);
}

TEST(GuardEdge, BlockedThenAllowedOnFreshSession) {
  // One blocked command kills the session; after the reconnect the next
  // command must flow normally (fresh TLS sequence space end to end).
  sim::Simulation sim{29};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, no_migration()};
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};

  // A decision module that blocks the first query and allows the rest.
  struct FlipModule : guard::DecisionModule {
    explicit FlipModule(sim::Simulation& s) : DecisionModule(s) {}
    int calls = 0;
    void do_query(Verdict v) override {
      const bool legit = ++calls > 1;
      sim_.after(sim::milliseconds(700),
                 [v = std::move(v), legit] { v(legit); });
    }
  } decision{sim};

  guard::GuardBox::Options gopts;
  gopts.speaker_ips = {speaker_host.ip()};
  guard::GuardBox guard{net, "guard", decision, gopts};
  net::Link& lan = net.add_link(speaker_host, guard, sim::milliseconds(2));
  speaker_host.attach(lan);
  guard.set_lan_link(lan);
  net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
  guard.set_wan_link(up);
  router.add_route(speaker_host.ip(), up);

  speaker::EchoDotModel echo{speaker_host, farm.dns_endpoint(),
                             [&farm] { return farm.current_avs_ip(); },
                             regular_echo()};
  echo.power_on();
  sim.run_until(sim::TimePoint{} + sim::seconds(10));

  speaker::CommandSpec c1;
  c1.id = 1;
  c1.words = 5;
  echo.hear_command(c1);
  sim.run_until(sim.now() + sim::seconds(60));
  EXPECT_TRUE(farm.all_executed().empty());
  EXPECT_EQ(guard.commands_blocked(), 1u);

  sim.run_until(sim.now() + sim::seconds(10));  // reconnect settles
  speaker::CommandSpec c2;
  c2.id = 2;
  c2.words = 5;
  echo.hear_command(c2);
  sim.run_until(sim.now() + sim::seconds(60));
  ASSERT_EQ(farm.all_executed().size(), 1u);
  EXPECT_EQ(farm.all_executed()[0].command_tag, "voice-cmd-end:2");
}

TEST(GuardEdge, GoogleStaleQuicSessionIsReusable) {
  GuardWorld w{true, sim::milliseconds(600)};
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 1.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  for (int i = 0; i < 3; ++i) {
    speaker::CommandSpec c;
    c.id = static_cast<std::uint64_t>(i + 1);
    c.words = 5;
    ghm.hear_command(c);
    // Longer than the Google cloud's QUIC idle timeout between commands.
    w.sim.run_until(w.sim.now() + sim::seconds(90));
  }
  EXPECT_EQ(w.farm.all_executed().size(), 3u);
}

TEST(GuardEdge, DnsAlwaysPassesThroughBlockingGuard) {
  GuardWorld w{false, sim::milliseconds(500)};
  net::DnsClient resolver{w.speaker_host, w.farm.dns_endpoint()};
  std::vector<IpAddress> got;
  resolver.resolve(w.farm.avs_domain(),
                   [&](const auto& ips) { got.assign(ips.begin(), ips.end()); });
  w.run_to(5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], w.farm.current_avs_ip());
}

}  // namespace
}  // namespace vg
