/// Tests for SmartHomeWorld's geometry/protocol helpers.

#include <gtest/gtest.h>

#include "workload/World.h"

namespace vg::workload {
namespace {

TEST(WorldHelpers, LegitimateAreaIsRoomForHomes) {
  for (auto kind : {WorldConfig::TestbedKind::kHouse,
                    WorldConfig::TestbedKind::kApartment}) {
    WorldConfig cfg;
    cfg.testbed = kind;
    cfg.owner_count = 1;
    SmartHomeWorld w{cfg};
    const auto area = w.legitimate_area();
    const auto* room = w.testbed().plan().room_by_name(
        w.testbed().speaker_room(cfg.deployment));
    EXPECT_DOUBLE_EQ(area.x0, room->bounds.x0);
    EXPECT_DOUBLE_EQ(area.y1, room->bounds.y1);
  }
}

TEST(WorldHelpers, LegitimateAreaIsBoxForOffice) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kOffice;
  cfg.owner_count = 1;
  cfg.use_watch = true;
  SmartHomeWorld w{cfg};
  const auto area = w.legitimate_area();
  const auto spk = w.testbed().speaker_position(1);
  EXPECT_LE(area.x1 - area.x0, 4.7);
  EXPECT_TRUE(area.contains(spk.xy()));
  // The box is a strict subset of the open office.
  const auto* room = w.testbed().plan().room_by_name("open-office");
  EXPECT_GT(area.x0, room->bounds.x0 - 1e-9);
  EXPECT_LT(area.x1, room->bounds.x1 + 1e-9);
}

TEST(WorldHelpers, InLegitimateAreaChecksFloorToo) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kHouse;
  cfg.owner_count = 1;
  SmartHomeWorld w{cfg};
  const auto spk = w.testbed().speaker_position(1);
  EXPECT_TRUE(w.in_legitimate_area({spk.x - 1, spk.y + 1, 1.1}));
  // Same (x, y), one floor up: the study is NOT legitimate.
  EXPECT_FALSE(w.in_legitimate_area({spk.x - 1, spk.y + 1, 3.9}));
}

TEST(WorldHelpers, RandomLegitSpotsAreAlwaysLegitimate) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kOffice;
  cfg.owner_count = 1;
  cfg.use_watch = true;
  SmartHomeWorld w{cfg};
  auto& rng = w.sim().rng("t");
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(w.in_legitimate_area(w.random_legit_spot(rng)));
  }
}

TEST(WorldHelpers, MovePersonRoutesThroughStairsAcrossFloors) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kHouse;
  cfg.owner_count = 1;
  SmartHomeWorld w{cfg};
  auto& person = w.owner(0);
  person.teleport(w.location_pos(10));  // living room, floor 0

  // Track whether the walk passes the stair region.
  const auto region = *w.stair_sensor_region();
  bool crossed = false;
  bool arrived = false;
  w.move_person(person, w.location_pos(64), [&arrived] { arrived = true; });
  while (!arrived && w.sim().pending_events() > 0) {
    w.sim().step(1);
    if (region.contains(person.position().xy())) crossed = true;
  }
  EXPECT_TRUE(arrived);
  EXPECT_TRUE(crossed);
  EXPECT_NEAR(person.position().z, w.location_pos(64).z, 1e-9);
}

TEST(WorldHelpers, MovePersonDirectOnSameFloor) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kApartment;
  cfg.owner_count = 1;
  SmartHomeWorld w{cfg};
  auto& person = w.owner(0);
  person.teleport(w.location_pos(1));
  bool arrived = false;
  const sim::TimePoint start = w.sim().now();
  w.move_person(person, w.location_pos(30), [&arrived] { arrived = true; });
  w.run_until([&arrived] { return arrived; }, sim::minutes(2));
  ASSERT_TRUE(arrived);
  const double dist =
      radio::distance(w.location_pos(1), w.location_pos(30));
  EXPECT_NEAR((w.sim().now() - start).seconds(),
              dist / home::Person::kDefaultSpeed, 0.5);
}

TEST(WorldHelpers, ThresholdWalkPathStaysInLegitArea) {
  for (auto kind : {WorldConfig::TestbedKind::kHouse,
                    WorldConfig::TestbedKind::kApartment,
                    WorldConfig::TestbedKind::kOffice}) {
    WorldConfig cfg;
    cfg.testbed = kind;
    cfg.owner_count = 1;
    cfg.use_watch = kind == WorldConfig::TestbedKind::kOffice;
    SmartHomeWorld w{cfg};
    for (const auto& p : w.threshold_walk_path()) {
      EXPECT_TRUE(w.legitimate_area().contains(p.xy()));
    }
  }
}

TEST(WorldHelpers, SpeakerHostIsReachableThroughGuard) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kApartment;
  cfg.owner_count = 1;
  SmartHomeWorld w{cfg};
  w.run_for(sim::seconds(10));
  ASSERT_NE(w.echo(), nullptr);
  EXPECT_TRUE(w.echo()->connected());
  EXPECT_EQ(w.guard().tracked_avs_ip(), w.cloud().current_avs_ip());
}

TEST(WorldHelpers, RadioParamsComeFromTestbedUnlessOverridden) {
  WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kOffice;
  cfg.owner_count = 1;
  cfg.use_watch = true;
  SmartHomeWorld office{cfg};
  EXPECT_NEAR(office.radio_params().exponent, 1.5, 1e-9);

  cfg.radio = radio::PathLossParams{};
  cfg.radio->exponent = 2.2;
  SmartHomeWorld overridden{cfg};
  EXPECT_NEAR(overridden.radio_params().exponent, 2.2, 1e-9);
}

}  // namespace
}  // namespace vg::workload
