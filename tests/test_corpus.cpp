#include <gtest/gtest.h>

#include "simcore/Rng.h"
#include "workload/Corpus.h"

namespace vg::workload {
namespace {

TEST(Corpus, CountWords) {
  EXPECT_EQ(count_words("turn off the lights"), 4);
  EXPECT_EQ(count_words("  padded   words  "), 2);
  EXPECT_EQ(count_words(""), 0);
}

TEST(Corpus, AlexaMatchesPaperStatistics) {
  const auto& c = CommandCorpus::alexa();
  // §V-A2: 320 commands, mean 5.95 words, >=4 words for 86.8 %.
  EXPECT_EQ(c.size(), 320u);
  EXPECT_NEAR(c.mean_words(), 5.95, 0.05);
  EXPECT_NEAR(c.fraction_with_at_least(4), 0.868, 0.01);
}

TEST(Corpus, GoogleMatchesPaperStatistics) {
  const auto& c = CommandCorpus::google();
  // §V-A2: 443 commands, mean 7.39 words, >=5 words for 93.9 %.
  EXPECT_EQ(c.size(), 443u);
  EXPECT_NEAR(c.mean_words(), 7.39, 0.05);
  EXPECT_NEAR(c.fraction_with_at_least(5), 0.939, 0.01);
}

TEST(Corpus, EveryCommandHasItsTargetLength) {
  for (const auto* corpus : {&CommandCorpus::alexa(), &CommandCorpus::google()}) {
    for (std::size_t i = 0; i < corpus->size(); ++i) {
      EXPECT_GE(corpus->word_count(i), 1);
      EXPECT_EQ(corpus->word_count(i), count_words(corpus->commands()[i]));
    }
  }
}

TEST(Corpus, SampleProducesConsistentSpec) {
  sim::RngRegistry reg{5};
  auto& rng = reg.stream("c");
  const auto& c = CommandCorpus::alexa();
  for (int i = 0; i < 50; ++i) {
    const auto cmd = c.sample(rng, static_cast<std::uint64_t>(i));
    EXPECT_EQ(cmd.id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(cmd.words, count_words(cmd.text));
    // Speech duration: wake word + words at 2 words/s.
    EXPECT_NEAR(cmd.speech_duration().seconds(), 0.6 + cmd.words / 2.0, 1e-6);
  }
}

TEST(Corpus, UserExperienceArgumentHolds) {
  // §V-A2's conclusion: at 2 words/s, >=80 % of commands take long enough to
  // speak that a sub-2 s RSSI query finishes within the utterance.
  const auto& alexa = CommandCorpus::alexa();
  const auto& google = CommandCorpus::google();
  EXPECT_GE(alexa.fraction_with_at_least(4), 0.80);   // >= 2.0 s of speech
  EXPECT_GE(google.fraction_with_at_least(5), 0.80);  // >= 2.5 s of speech
}

}  // namespace
}  // namespace vg::workload
