#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "simcore/Rng.h"
#include "speaker/TrafficPatterns.h"
#include "voiceguard/GuardBox.h"
#include "voiceguard/Recognizer.h"

namespace vg::guard {
namespace {

// ---------------------------------------------------------------------------
// SignatureMatcher
// ---------------------------------------------------------------------------

TEST(SignatureMatcher, MatchesExactPrefix) {
  SignatureMatcher m{{63, 33, 653}};
  EXPECT_EQ(m.feed(63), SignatureMatcher::State::kMatching);
  EXPECT_EQ(m.feed(33), SignatureMatcher::State::kMatching);
  EXPECT_EQ(m.feed(653), SignatureMatcher::State::kMatched);
  // Extra packets don't un-match.
  EXPECT_EQ(m.feed(1), SignatureMatcher::State::kMatched);
}

TEST(SignatureMatcher, FailsOnFirstMismatch) {
  SignatureMatcher m{{63, 33, 653}};
  EXPECT_EQ(m.feed(63), SignatureMatcher::State::kMatching);
  EXPECT_EQ(m.feed(99), SignatureMatcher::State::kFailed);
  EXPECT_EQ(m.feed(653), SignatureMatcher::State::kFailed);
}

TEST(SignatureMatcher, ResetRestartsMatching) {
  SignatureMatcher m{{1, 2}};
  m.feed(9);
  ASSERT_EQ(m.state(), SignatureMatcher::State::kFailed);
  m.reset();
  EXPECT_EQ(m.feed(1), SignatureMatcher::State::kMatching);
  EXPECT_EQ(m.feed(2), SignatureMatcher::State::kMatched);
}

TEST(SignatureMatcher, GuardAndSpeakerAgreeOnTheAvsSignature) {
  // The guard's defender-side copy must equal the measured speaker behaviour.
  EXPECT_EQ(GuardBox::avs_signature(), speaker::kAvsConnectionSignature);
}

TEST(SignatureMatcher, RejectsAllOtherAmazonServerSignatures) {
  // §IV-B1: the AVS sequence differs from the six other servers' sequences.
  for (int i = 0; i < 6; ++i) {
    SignatureMatcher m{GuardBox::avs_signature()};
    for (std::uint32_t len : speaker::other_server_signature(i)) {
      m.feed(len);
    }
    EXPECT_NE(m.state(), SignatureMatcher::State::kMatched) << "server " << i;
  }
}

// ---------------------------------------------------------------------------
// SpikeClassifier — rules from §IV-B1
// ---------------------------------------------------------------------------

TEST(SpikeClassifier, P138InFirstFiveIsCommand) {
  EXPECT_EQ(classify_spike({300, 138, 200, 200, 200}), SpikeClass::kCommand);
  EXPECT_EQ(classify_spike({138}), SpikeClass::kCommand);
}

TEST(SpikeClassifier, P75InFirstFiveIsCommand) {
  EXPECT_EQ(classify_spike({300, 200, 200, 200, 75}), SpikeClass::kCommand);
}

TEST(SpikeClassifier, P138AtSixthPositionDoesNotCount) {
  // The frequent-length rule is defined on the first 5 packets only.
  EXPECT_EQ(classify_spike({300, 200, 200, 200, 200, 138, 900}),
            SpikeClass::kUnknown);
}

TEST(SpikeClassifier, FixedPatternsAreCommands) {
  EXPECT_EQ(classify_spike({277, 131, 277, 131, 113}), SpikeClass::kCommand);
  EXPECT_EQ(classify_spike({250, 131, 113, 113, 113}), SpikeClass::kCommand);
  EXPECT_EQ(classify_spike({650, 131, 121, 277, 131}), SpikeClass::kCommand);
}

TEST(SpikeClassifier, FixedPatternFirstLengthMustBeInRange) {
  EXPECT_EQ(classify_spike({249, 131, 277, 131, 113}), SpikeClass::kUnknown);
  EXPECT_EQ(classify_spike({651, 131, 277, 131, 113}), SpikeClass::kUnknown);
}

TEST(SpikeClassifier, SequentialPair77_33IsResponse) {
  EXPECT_EQ(classify_spike({500, 77, 33, 100, 100}), SpikeClass::kResponse);
  // As late as packets 6 and 7.
  EXPECT_EQ(classify_spike({500, 100, 100, 100, 100, 77, 33}),
            SpikeClass::kResponse);
}

TEST(SpikeClassifier, NonSequential77And33IsNotResponse) {
  EXPECT_EQ(classify_spike({77, 100, 33, 100, 100, 100, 100}),
            SpikeClass::kUnknown);
}

TEST(SpikeClassifier, PairAfterSeventhPacketDoesNotCount) {
  EXPECT_EQ(classify_spike({500, 100, 100, 100, 100, 100, 100, 77, 33}),
            SpikeClass::kUnknown);
}

TEST(SpikeClassifier, ResponseRuleWinsOverLatePhase1Lengths) {
  // 77,33 up front; a 138 later must not flip it to command (100% precision
  // depends on rule order).
  EXPECT_EQ(classify_spike({77, 33, 138, 100, 100}), SpikeClass::kResponse);
}

TEST(SpikeClassifier, IncrementalDecidesEarly) {
  SpikeClassifier c;
  EXPECT_FALSE(c.feed(300).has_value());
  auto v = c.feed(138);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, SpikeClass::kCommand);
  // Later packets can't change a final verdict.
  EXPECT_EQ(*c.feed(77), SpikeClass::kCommand);
  EXPECT_EQ(*c.feed(33), SpikeClass::kCommand);
}

TEST(SpikeClassifier, FinalizeOnShortSpike) {
  SpikeClassifier c;
  c.feed(400);
  c.feed(200);
  EXPECT_EQ(c.finalize(), SpikeClass::kUnknown);
}

TEST(SpikeClassifier, FinalizeAfterDecisionReturnsDecision) {
  SpikeClassifier c;
  c.feed(77);
  c.feed(33);
  EXPECT_EQ(c.finalize(), SpikeClass::kResponse);
}

// ---------------------------------------------------------------------------
// DFA vs. window-scan oracle equivalence
// ---------------------------------------------------------------------------

// Feeds one sequence record-by-record into both the O(1)-per-record DFA and
// the legacy window-scan oracle and asserts they agree at every step: the
// per-feed verdict (including *when* the verdict fires), the forced finalize()
// verdict, and matched_rule(). Returns the rule so callers can track coverage.
MatchedRule expect_equivalent(const std::vector<std::uint32_t>& seq) {
  SpikeClassifier dfa;
  legacy::WindowScanClassifier oracle;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const auto a = dfa.feed(seq[i]);
    const auto b = oracle.feed(seq[i]);
    EXPECT_EQ(a.has_value(), b.has_value())
        << "decision timing diverged at record " << i;
    if (a.has_value() && b.has_value()) {
      EXPECT_EQ(*a, *b) << "record " << i;
    }
    EXPECT_EQ(dfa.finalize(), oracle.finalize()) << "record " << i;
    EXPECT_EQ(dfa.matched_rule(), oracle.matched_rule()) << "record " << i;
  }
  EXPECT_EQ(dfa.finalize(), oracle.finalize());
  EXPECT_EQ(dfa.matched_rule(), oracle.matched_rule());
  return dfa.matched_rule();
}

TEST(SpikeClassifierEquivalence, ExhaustiveOverRuleAlphabet) {
  // Every sequence up to length 4 over the lengths the rules actually
  // mention (plus a neutral filler) — 8^1 + ... + 8^4 = 4680 sequences.
  const std::vector<std::uint32_t> alphabet = {138, 75, 77, 33,
                                               131, 277, 113, 400};
  std::set<MatchedRule> covered;
  std::vector<std::uint32_t> seq;
  const auto enumerate = [&](auto&& self, std::size_t depth) -> void {
    if (!seq.empty()) covered.insert(expect_equivalent(seq));
    if (depth == 4) return;
    for (std::uint32_t len : alphabet) {
      seq.push_back(len);
      self(self, depth + 1);
      seq.pop_back();
    }
  };
  enumerate(enumerate, 0);
  EXPECT_TRUE(covered.count(MatchedRule::kP138));
  EXPECT_TRUE(covered.count(MatchedRule::kP75));
  EXPECT_TRUE(covered.count(MatchedRule::kResponsePair));
  EXPECT_TRUE(covered.count(MatchedRule::kNone));
}

TEST(SpikeClassifierEquivalence, RandomSequencesCoverEveryRule) {
  // Length-4 enumeration can't reach the 5-record fixed patterns; random
  // longer sequences (seeded with pattern-shaped material) cover the rest of
  // the MatchedRule enum. Coverage of all 7 values is asserted, so this test
  // fails loudly if a rule ever becomes unreachable.
  sim::RngRegistry reg{20260807};
  auto& rng = reg.stream("equivalence");
  const std::vector<std::uint32_t> alphabet = {138, 75,  77,  33,  131, 113,
                                               121, 277, 250, 650, 249, 651,
                                               400, 500, 100, 0};
  std::set<MatchedRule> covered;
  // Directed seeds: each fixed pattern, clean and perturbed.
  covered.insert(expect_equivalent({277, 131, 277, 131, 113}));
  covered.insert(expect_equivalent({250, 131, 113, 113, 113}));
  covered.insert(expect_equivalent({650, 131, 121, 277, 131}));
  covered.insert(expect_equivalent({249, 131, 277, 131, 113}));
  covered.insert(expect_equivalent({277, 131, 277, 131, 113, 77, 33}));
  for (int i = 0; i < 50000; ++i) {
    std::vector<std::uint32_t> seq(1 + rng.index(9));
    for (auto& len : seq) len = rng.pick(alphabet);
    covered.insert(expect_equivalent(seq));
  }
  for (MatchedRule r :
       {MatchedRule::kNone, MatchedRule::kP138, MatchedRule::kP75,
        MatchedRule::kPatternA, MatchedRule::kPatternB, MatchedRule::kPatternC,
        MatchedRule::kResponsePair}) {
    EXPECT_TRUE(covered.count(r)) << "rule never produced: " << to_string(r);
  }
}

TEST(SpikeClassifierEquivalence, GeneratedTrafficAgrees) {
  // The DFA and the oracle agree on realistic generator traffic, not just on
  // the synthetic alphabet.
  sim::RngRegistry reg{424242};
  auto& rng = reg.stream("t");
  for (int i = 0; i < 5000; ++i) {
    expect_equivalent(speaker::gen_phase1_prefix(rng));
    expect_equivalent(speaker::gen_phase2_prefix(rng));
  }
  EXPECT_EQ(analyze_spike({277, 131, 277, 131, 113}).rule,
            legacy::analyze_spike({277, 131, 277, 131, 113}).rule);
}

// Regression for the pre-DFA bug: matched_rule() on an undecided classifier
// used to re-run the whole window evaluation. It must now be a plain O(1)
// read — kNone while undecided — and calling it must never perturb the
// verdict of subsequent records.
TEST(SpikeClassifier, MatchedRuleWhileUndecidedIsInertAndNone) {
  SpikeClassifier c;
  EXPECT_EQ(c.matched_rule(), MatchedRule::kNone);
  c.feed(277);
  c.feed(131);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.matched_rule(), MatchedRule::kNone);  // undecided: no rule yet
    EXPECT_EQ(c.finalize(), SpikeClass::kUnknown);
  }
  // The interleaved queries above must not have disturbed the pattern cursor.
  c.feed(277);
  c.feed(131);
  auto v = c.feed(113);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, SpikeClass::kCommand);
  EXPECT_EQ(c.matched_rule(), MatchedRule::kPatternA);
}

// ---------------------------------------------------------------------------
// Generator/classifier agreement — the property behind Table I.
// ---------------------------------------------------------------------------

TEST(TrafficPatterns, RegularPhase1PrefixesClassifyAsCommand) {
  sim::RngRegistry reg{123};
  auto& rng = reg.stream("t");
  speaker::Phase1Options opts;
  opts.irregular_prob = 0.0;  // only regular spikes
  for (int i = 0; i < 2000; ++i) {
    const auto prefix = speaker::gen_phase1_prefix(rng, opts);
    EXPECT_EQ(classify_spike(prefix), SpikeClass::kCommand)
        << "iteration " << i;
  }
}

TEST(TrafficPatterns, Phase2PrefixesNeverClassifyAsCommand) {
  // 100% precision: no response spike may be classified as a command.
  sim::RngRegistry reg{321};
  auto& rng = reg.stream("t");
  for (int i = 0; i < 2000; ++i) {
    const auto prefix = speaker::gen_phase2_prefix(rng);
    EXPECT_EQ(classify_spike(prefix), SpikeClass::kResponse)
        << "iteration " << i;
  }
}

TEST(TrafficPatterns, IrregularRateMatchesTableOne) {
  // With the default irregular probability, the miss rate over many spikes
  // sits near Table I's 2/134 ≈ 1.5%.
  sim::RngRegistry reg{77};
  auto& rng = reg.stream("t");
  int misses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (classify_spike(speaker::gen_phase1_prefix(rng)) != SpikeClass::kCommand) {
      ++misses;
    }
  }
  const double rate = static_cast<double>(misses) / n;
  EXPECT_GT(rate, 0.005);
  EXPECT_LT(rate, 0.03);
}

TEST(TrafficPatterns, AvsSignatureIsExactlyThePaper) {
  const std::vector<std::uint32_t> expected = {63, 33, 653, 131, 73, 131, 188,
                                               73, 131, 73, 131, 73, 131, 77,
                                               33, 33};
  EXPECT_EQ(speaker::kAvsConnectionSignature, expected);
}

}  // namespace
}  // namespace vg::guard
