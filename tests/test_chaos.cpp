/// The chaos matrix (label: chaos): every named FaultPlan x guard mode runs
/// the scripted apartment workload while faults fire, and these tests assert
/// the graceful-degradation invariants on the counters:
///   1. no held packet leaks (held_outstanding == 0 after the drain window);
///   2. every recognized spike reaches a terminal outcome (unresolved == 0);
///   3. connections die only under plans that declare may_break_connections
///      (or when the guard intentionally dropped a command);
///   4. a fixed seed reproduces bit-identically, serial or batched.

#include <gtest/gtest.h>

#include <cstdio>

#include "cloud/CloudFarm.h"
#include "netsim/Host.h"
#include "netsim/Router.h"
#include "simcore/BatchRunner.h"
#include "speaker/EchoDot.h"
#include "trace/Replayer.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"
#include "voiceguard/Decision.h"
#include "voiceguard/GuardBox.h"
#include "workload/ChaosScenarios.h"

namespace vg::workload {
namespace {

constexpr sim::TimePoint kEpoch{};

/// The one seed the whole matrix derives from; printed so a failure is
/// reproducible by hand (`bench_chaos_matrix` uses its own fixed seed).
constexpr std::uint64_t kMatrixSeed = 4242;

TEST(ChaosMatrix, DegradationInvariantsHoldAcrossTheMatrix) {
  std::printf("chaos matrix seed: %llu\n",
              static_cast<unsigned long long>(kMatrixSeed));
  const auto specs = chaos_matrix(kMatrixSeed, guard::FailPolicy::kFailClosed);
  ASSERT_GE(specs.size(), 24u);  // >= 8 plans x 3 modes
  const auto results = run_chaos_serial(specs);
  ASSERT_EQ(results.size(), specs.size());

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ChaosResult& r = results[i];
    SCOPED_TRACE(r.label);

    // Invariant 1: every held packet was released or intentionally dropped.
    EXPECT_EQ(r.held_outstanding, 0u);
    // Invariant 2: every spike reached a terminal outcome.
    EXPECT_EQ(r.unresolved_spikes, 0u);
    // The speaker heard at least half the script: a real Echo ignores a wake
    // word mid-interaction, so a 40 s client timeout can swallow the next
    // scripted command, but never two in a row.
    EXPECT_GE(r.interactions, 3u);
    EXPECT_LE(r.interactions, 6u);

    // Invariant 3: under plans that promise not to break connections, a
    // session dies only as the visible consequence of an intentional drop —
    // the cloud killing a sequence-violated stream after the guard swallowed
    // a command, or the speaker giving up on a response and re-establishing.
    // Never because a fault reset it behind everyone's back.
    if (!r.may_break_connections) {
      EXPECT_LE(r.sessions_killed, r.blocked + r.forced_closed);
      const std::uint64_t timeouts =
          r.interactions - r.responses - r.connection_errors;
      EXPECT_LE(r.reconnects, r.blocked + r.forced_closed + timeouts);
      if (specs[i].mode == guard::GuardMode::kMonitor) {
        // Monitor mode never drops anything, so the cloud never kills a
        // stream and the speaker never sees a connection error.
        EXPECT_EQ(r.blocked, 0u);
        EXPECT_EQ(r.forced_closed, 0u);
        EXPECT_EQ(r.sessions_killed, 0u);
        EXPECT_EQ(r.connection_errors, 0u);
      }
    }

    if (specs[i].plan == "baseline") {
      EXPECT_EQ(r.faults_injected, 0u);
      EXPECT_EQ(r.link_dropped, 0u);
      if (specs[i].mode == guard::GuardMode::kMonitor) {
        // Observe-only on a healthy network: the whole script goes through.
        EXPECT_EQ(r.commands_executed, 6u);
        EXPECT_EQ(r.responses, 6u);
      } else {
        // Both defenses hold and block the attack commands (2, 4, 6).
        EXPECT_LE(r.commands_executed, 3u);
      }
    } else {
      EXPECT_GT(r.faults_injected, 0u);
    }

    if (specs[i].mode == guard::GuardMode::kVoiceGuard) {
      EXPECT_GT(r.spikes, 0u);
    }
  }
}

TEST(ChaosMatrix, FixedSeedReproducesBitIdentically) {
  ChaosSpec spec;
  spec.plan = "kitchen-sink";
  spec.mode = guard::GuardMode::kVoiceGuard;
  spec.fail_policy = guard::FailPolicy::kFailClosed;
  spec.seed = 909;
  const ChaosResult r1 = run_chaos(spec);
  const ChaosResult r2 = run_chaos(spec);
  EXPECT_EQ(r1.fingerprint(), r2.fingerprint());
  EXPECT_EQ(r1.to_string(), r2.to_string());
  EXPECT_GT(r1.faults_injected, 0u);
}

TEST(ChaosMatrix, BatchRunnerMatchesSerial) {
  std::vector<ChaosSpec> specs;
  std::uint64_t seed = 5150;
  for (const char* plan : {"baseline", "lan-burst", "fcm-degraded"}) {
    for (auto mode :
         {guard::GuardMode::kVoiceGuard, guard::GuardMode::kMonitor}) {
      ChaosSpec s;
      s.plan = plan;
      s.mode = mode;
      s.seed = seed++;
      specs.push_back(std::move(s));
    }
  }
  const auto serial = run_chaos_serial(specs);
  sim::BatchRunner pool;
  const auto batched = run_chaos_batch(specs, pool);
  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].fingerprint(), batched[i].fingerprint());
    EXPECT_EQ(serial[i].to_string(), batched[i].to_string());
  }
}

TEST(ChaosPolicy, FailOpenAndFailClosedDivergeWhenTheDeviceDies) {
  // "device-crash" kills the only owner phone at t=15 s, so every later
  // verdict is late: the decision module's own 6 s device timeout sits beyond
  // the guard's 5 s patience, and the fail policy decides.
  ChaosSpec spec;
  spec.plan = "device-crash";
  spec.mode = guard::GuardMode::kVoiceGuard;
  spec.seed = 31337;

  spec.fail_policy = guard::FailPolicy::kFailClosed;
  const ChaosResult closed = run_chaos(spec);
  spec.fail_policy = guard::FailPolicy::kFailOpen;
  const ChaosResult open = run_chaos(spec);

  EXPECT_GT(closed.forced_closed, 0u);
  EXPECT_EQ(closed.forced_open, 0u);
  EXPECT_GT(open.forced_open, 0u);
  EXPECT_EQ(open.forced_closed, 0u);
  // Fail-open trades safety for availability: strictly more of the script
  // reaches the cloud, including the attack commands fail-closed stopped.
  EXPECT_GT(open.commands_executed, closed.commands_executed);
  // Both policies still satisfy the leak/terminality invariants.
  for (const ChaosResult* r : {&closed, &open}) {
    EXPECT_EQ(r->held_outstanding, 0u);
    EXPECT_EQ(r->unresolved_spikes, 0u);
  }
}

TEST(ChaosTrace, InjectedFaultsAnnotateTheCaptureAndRoundTrip) {
  ChaosSpec spec;
  spec.plan = "fcm-degraded";
  spec.mode = guard::GuardMode::kVoiceGuard;
  spec.seed = 616;
  trace::TraceWriter writer{{/*scenario=*/"chaos-fcm-degraded", spec.seed}};
  const ChaosResult r = run_chaos(spec, &writer);
  ASSERT_GT(r.faults_injected, 0u);

  const trace::TraceReader reader = trace::TraceReader::parse(writer.finish());
  std::vector<const trace::TraceRecord*> faults;
  for (const auto& rec : reader.records()) {
    if (rec.kind == trace::FrameKind::kFault) faults.push_back(&rec);
  }
  // Every boundary the injector fired is in the capture, in order, with the
  // numeric FaultEvent::Kind <-> trace::FaultCode identity intact.
  ASSERT_EQ(faults.size(), r.faults_injected);
  EXPECT_EQ(faults[0]->fault_code,
            static_cast<std::uint8_t>(faults::FaultEvent::Kind::kFcmDegraded));
  EXPECT_EQ(faults[0]->fault_param, 45u);  // the plan's 45 % drop, in percent
  EXPECT_EQ(faults.back()->fault_code,
            static_cast<std::uint8_t>(faults::FaultEvent::Kind::kFcmNormal));
  for (const auto* f : faults) {
    EXPECT_LE(f->fault_code, trace::kMaxFaultCode);
  }
  for (std::size_t i = 1; i < faults.size(); ++i) {
    EXPECT_LE(faults[i - 1]->when, faults[i]->when);
  }

  // The replayer counts the annotations without letting them perturb the
  // recognizer's view of the traffic.
  const trace::ReplayResult replay = trace::Replayer{}.run(reader);
  EXPECT_EQ(replay.fault_frames, r.faults_injected);
  EXPECT_GT(replay.tls_records, 0u);
}

TEST(ChaosKeepAlive, HeldConnectionSurvivesProbeLossDuringTheHold) {
  // Satellite invariant: a connection whose keep-alive probes (or their ACKs)
  // are eaten by a link fault in the middle of a long hold must survive the
  // hold. The guard terminates TCP on both arms, so the probes that matter
  // run speaker->guard over the LAN link; a 3 s flap eats a probe round or
  // two, well inside the 4-probe / 2 s budget.
  sim::Simulation sim{7};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm::Options fopts;
  fopts.avs_migration_mean = sim::Duration{0};
  cloud::CloudFarm farm{net, router, fopts};
  net::Host speaker_host{net, "speaker", net::IpAddress(192, 168, 1, 200)};
  guard::FixedDecisionModule decision{sim, /*answer=*/true, sim::seconds(30)};
  guard::GuardBox::Options gopts;
  gopts.speaker_ips = {speaker_host.ip()};
  gopts.mode = guard::GuardMode::kVoiceGuard;
  gopts.verdict_timeout = sim::Duration{};  // the 30 s hold must run out
  guard::GuardBox guard{net, "guard", decision, gopts};
  net::Link& lan = net.add_link(speaker_host, guard, sim::milliseconds(2));
  speaker_host.attach(lan);
  guard.set_lan_link(lan);
  net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
  guard.set_wan_link(up);
  router.add_route(speaker_host.ip(), up);

  speaker::EchoDotModel::Options eopts;
  eopts.misc_connection_mean = sim::Duration{0};
  eopts.phase1.irregular_prob = 0.0;
  eopts.heartbeat_interval = sim::minutes(5);  // keep the session truly idle
  eopts.keepalive_idle = sim::seconds(8);
  eopts.keepalive_interval = sim::seconds(2);
  eopts.keepalive_probes = 4;
  eopts.response_timeout = sim::seconds(60);  // outlast the 30 s hold
  speaker::EchoDotModel echo{speaker_host, farm.dns_endpoint(),
                             [&farm] { return farm.current_avs_ip(); }, eopts};
  echo.power_on();
  sim.run_until(kEpoch + sim::seconds(10));

  // Command at t=10; streaming ends ~t=12; keep-alive probes start ~t=20 and
  // repeat every 2 s while the spike is held. The flap eats the early ones.
  lan.add_flap(kEpoch + sim::seconds(21), kEpoch + sim::seconds(24));
  speaker::CommandSpec cmd;
  cmd.id = 1;
  cmd.text = "what is tonight's schedule";
  cmd.words = 6;
  echo.hear_command(cmd);
  sim.run_until(kEpoch + sim::seconds(120));

  EXPECT_GT(lan.flap_dropped(), 0u);  // the fault really ate traffic
  ASSERT_EQ(echo.interactions().size(), 1u);
  EXPECT_TRUE(echo.interactions()[0].response_received);
  EXPECT_FALSE(echo.interactions()[0].connection_error);
  EXPECT_EQ(echo.reconnects(), 0u);
  EXPECT_EQ(guard.commands_released(), 1u);
  EXPECT_EQ(guard.held_outstanding(), 0u);
  EXPECT_FALSE(farm.all_executed().empty());
}

}  // namespace
}  // namespace vg::workload
