#include <gtest/gtest.h>

#include "home/Testbed.h"
#include "radio/Propagation.h"

/// Structural invariants of the three testbeds — the properties Figs. 8-9
/// depend on. These pin the calibration: if the floor plans or propagation
/// parameters drift, these tests fail before the benches mislead anyone.

namespace vg::home {
namespace {

using radio::mean_rssi;
using radio::PathLossParams;
using radio::Vec3;

class HouseTest : public ::testing::Test {
 protected:
  Testbed tb = Testbed::two_floor_house();
  PathLossParams p{};
  Vec3 spk = tb.speaker_position(1);  // living-room deployment (Fig. 8a)

  double rssi_at(int loc) const {
    return mean_rssi(tb.plan(), p, spk, tb.location(loc).pos);
  }
};

TEST_F(HouseTest, Has78NumberedLocations) {
  EXPECT_EQ(tb.locations().size(), 78u);
  for (int i = 1; i <= 78; ++i) EXPECT_EQ(tb.location(i).number, i);
  EXPECT_THROW((void)tb.location(79), std::out_of_range);
  EXPECT_EQ(tb.floor_count(), 2);
}

TEST_F(HouseTest, LocationsSitInTheirClaimedRooms) {
  const auto& plan = tb.plan();
  for (const auto& loc : tb.locations()) {
    const int floor = plan.floor_of(loc.pos.z);
    const auto* room = plan.room_at(loc.pos.xy(), floor);
    ASSERT_NE(room, nullptr) << "location " << loc.number;
    EXPECT_EQ(room->name, loc.room) << "location " << loc.number;
  }
}

TEST_F(HouseTest, LivingRoomStaysAboveThreshold) {
  // Fig. 8a: every living-room location (#1-#24) is above the -8 threshold.
  for (int i = 1; i <= 24; ++i) {
    EXPECT_GT(rssi_at(i), -8.0) << "location " << i;
  }
}

TEST_F(HouseTest, LineOfSightHallwaySpotsAreLegitimate) {
  // Fig. 8a: #25-#27 are within line of sight through the door and above
  // the threshold despite being outside the room.
  for (int i = 25; i <= 27; ++i) {
    EXPECT_TRUE(tb.plan().line_of_sight(spk, tb.location(i).pos))
        << "location " << i;
    EXPECT_GT(rssi_at(i), -8.0) << "location " << i;
  }
}

TEST_F(HouseTest, OtherGroundFloorRoomsFallBelowThreshold) {
  // Kitchen (#28-#37) and restroom (#38-#41) are behind walls.
  for (int i = 28; i <= 41; ++i) {
    EXPECT_LT(rssi_at(i), -8.0) << "location " << i;
  }
}

TEST_F(HouseTest, DirectlyOverheadRoomIsTheFalseAcceptHole) {
  // Fig. 8a's central observation: part of the study (directly above the
  // speaker) stays ABOVE the threshold — #55, #56 (and #59, #60 nearby).
  EXPECT_GT(rssi_at(55), -8.0);
  EXPECT_GT(rssi_at(56), -8.0);
  EXPECT_GT(rssi_at(59), -8.0);
  EXPECT_GT(rssi_at(60), -8.0);
}

TEST_F(HouseTest, OtherUpstairsRoomsAreBelowThreshold) {
  // Landing (#49-#54), bedroom-2 (#63-#70), bedroom-1 (#71-#78).
  for (int i = 49; i <= 54; ++i) EXPECT_LT(rssi_at(i), -8.0) << i;
  for (int i = 63; i <= 78; ++i) EXPECT_LT(rssi_at(i), -8.0) << i;
}

TEST_F(HouseTest, StaircaseTraceIsMonotoneDecreasing) {
  // §V-B2: walking #42 -> #48 the RSSI gets smaller and smaller.
  double prev = rssi_at(42);
  for (int i = 43; i <= 48; ++i) {
    const double cur = rssi_at(i);
    EXPECT_LT(cur, prev) << "location " << i;
    prev = cur;
  }
  // And the full drop is steep enough for the slope rule (> ~4 dB over 8 s).
  EXPECT_LT(rssi_at(48), rssi_at(42) - 4.0);
}

TEST_F(HouseTest, Route2EndsWellBelowItsStart) {
  // Route 2 (#21 -> #37) produces a falling, Up-like trace.
  EXPECT_LT(rssi_at(37), rssi_at(21) - 4.0);
}

TEST_F(HouseTest, Route3EndsWellAboveItsStart) {
  // Route 3 (#48 -> #59) produces a rising, Down-like trace.
  EXPECT_GT(rssi_at(59), rssi_at(48) + 4.0);
}

TEST_F(HouseTest, OutsideTheHouseIsVeryQuiet) {
  EXPECT_LT(mean_rssi(tb.plan(), p, spk, Vec3{-3, -3, 1.1}), -15.0);
}

TEST_F(HouseTest, SecondDeploymentIsInTheKitchen) {
  const Vec3 spk2 = tb.speaker_position(2);
  EXPECT_EQ(tb.speaker_room(2), "kitchen");
  // Fig. 9a: kitchen locations above threshold, living room mostly below.
  const auto kitchen = tb.locations_in("kitchen");
  ASSERT_FALSE(kitchen.empty());
  for (const auto* loc : kitchen) {
    EXPECT_GT(mean_rssi(tb.plan(), p, spk2, loc->pos), -8.0)
        << "location " << loc->number;
  }
  EXPECT_LT(mean_rssi(tb.plan(), p, spk2, tb.location(4).pos), -8.0);
}

TEST_F(HouseTest, InvalidDeploymentThrows) {
  EXPECT_THROW((void)tb.speaker_position(0), std::invalid_argument);
  EXPECT_THROW((void)tb.speaker_position(3), std::invalid_argument);
}

class ApartmentTest : public ::testing::Test {
 protected:
  Testbed tb = Testbed::apartment();
  PathLossParams p{};
};

TEST_F(ApartmentTest, Has54Locations) {
  EXPECT_EQ(tb.locations().size(), 54u);
  for (int i = 1; i <= 54; ++i) EXPECT_EQ(tb.location(i).number, i);
  EXPECT_EQ(tb.floor_count(), 1);
}

TEST_F(ApartmentTest, LocationsSitInTheirClaimedRooms) {
  const auto& plan = tb.plan();
  for (const auto& loc : tb.locations()) {
    const auto* room = plan.room_at(loc.pos.xy(), 0);
    ASSERT_NE(room, nullptr) << "location " << loc.number;
    EXPECT_EQ(room->name, loc.room) << "location " << loc.number;
  }
}

TEST_F(ApartmentTest, SpeakerRoomSeparatesFromOtherRooms) {
  for (int dep = 1; dep <= 2; ++dep) {
    const Vec3 spk = tb.speaker_position(dep);
    const std::string& room = tb.speaker_room(dep);
    double worst_inside = 100, best_outside = -100;
    for (const auto& loc : tb.locations()) {
      const double r = mean_rssi(tb.plan(), p, spk, loc.pos);
      if (loc.room == room) {
        worst_inside = std::min(worst_inside, r);
      } else {
        best_outside = std::max(best_outside, r);
      }
    }
    // The in-room minimum (the learned threshold) exceeds everything in
    // walled-off rooms... except possibly spots visible through a door.
    // Require a margin over the *typical* outside location instead of max.
    EXPECT_GT(worst_inside, -9.0) << "deployment " << dep;
    EXPECT_LT(best_outside, worst_inside + 3.0) << "deployment " << dep;
  }
}

class OfficeTest : public ::testing::Test {
 protected:
  Testbed tb = Testbed::office();
  PathLossParams p{};
};

TEST_F(OfficeTest, Has70Locations) {
  EXPECT_EQ(tb.locations().size(), 70u);
  for (int i = 1; i <= 70; ++i) EXPECT_EQ(tb.location(i).number, i);
}

TEST_F(OfficeTest, LegitimateBoxSeparatesFromFarArea) {
  for (int dep = 1; dep <= 2; ++dep) {
    const Vec3 spk = tb.speaker_position(dep);
    for (const auto& loc : tb.locations()) {
      const double r = mean_rssi(tb.plan(), p, spk, loc.pos);
      const double dx = std::abs(loc.pos.x - spk.x);
      const double dy = std::abs(loc.pos.y - spk.y);
      if (dx <= 3.0 && dy <= 3.0 && loc.room == "open-office") {
        EXPECT_GT(r, -7.0) << "dep " << dep << " location " << loc.number;
      }
      if (loc.room != "open-office") {
        EXPECT_LT(r, -8.0) << "dep " << dep << " location " << loc.number;
      }
    }
  }
}

}  // namespace
}  // namespace vg::home
