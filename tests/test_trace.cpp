/// Unit tests for the wire-trace subsystem: CRC pinning, the on-disk byte
/// layout (cross-endianness hex fixture), writer/reader round-trip
/// properties, strict rejection of corrupted files, and the offline
/// Replayer's recognition semantics.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/Replayer.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"

using namespace vg;
using trace::FrameKind;
using trace::TraceError;
using trace::TraceReader;
using trace::TraceWriter;

namespace {

constexpr sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint{ms * 1'000'000};
}

const net::IpAddress kSpeaker{192, 168, 1, 200};
const net::IpAddress kAvs{10, 0, 0, 1};

TraceWriter::Meta small_meta() {
  TraceWriter::Meta m;
  m.scenario = "unit";
  m.seed = 42;
  return m;
}

/// One AVS flow identified by DNS, with its establishment burst done, ready
/// for spike records at >= 5 s.
TraceWriter avs_flow_writer() {
  TraceWriter w{small_meta()};
  w.dns_answer(trace::kDomainAvs, kAvs, at_ms(100));
  const int f = w.add_flow(net::Protocol::kTcp,
                           net::Endpoint{kSpeaker, net::Port{50001}},
                           net::Endpoint{kAvs, net::Port{443}}, at_ms(200));
  const auto& sig = guard::GuardBox::avs_signature();
  for (std::size_t i = 0; i < sig.size(); ++i) {
    w.tls_record(f, true, net::TlsContentType::kApplicationData, sig[i],
                 at_ms(210 + static_cast<std::int64_t>(i)));
  }
  return w;
}

void add_spike(TraceWriter& w, std::int64_t ms,
               std::initializer_list<std::uint32_t> lens, int flow = 0) {
  std::int64_t t = ms;
  for (std::uint32_t len : lens) {
    w.tls_record(flow, true, net::TlsContentType::kApplicationData, len,
                 at_ms(t));
    t += 10;
  }
}

trace::ReplayResult replay(TraceWriter& w) {
  return trace::Replayer{}.run(TraceReader::parse(w.finish()));
}

// --- CRC and layout pinning -------------------------------------------------

TEST(TraceFormat, Crc32CheckValue) {
  // The standard check value of CRC-32/ISO-HDLC: crc32("123456789").
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(trace::crc32(digits, sizeof digits), 0xCBF43926u);
  EXPECT_EQ(trace::crc32(nullptr, 0), 0x00000000u);
}

TEST(TraceFormat, VarintRoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     0xFFFFFFFFull,
                                  0xFFFFFFFFFFFFFFFFull};
  for (std::uint64_t v : values) trace::put_varint(buf, v);
  trace::ByteCursor c{buf.data(), buf.size()};
  for (std::uint64_t v : values) EXPECT_EQ(c.varint(), v);
  EXPECT_TRUE(c.done());
}

/// The on-disk layout, pinned byte for byte against an independently
/// generated fixture. Catches any endianness or layout drift: the same bytes
/// must be produced (and parsed back) on every platform.
TEST(TraceFormat, GoldenHexFixture) {
  const char* kHex =
      "5647545201000000887766554433221105000000000000000200667801006101"
      "00670902c0843d000403020197daf1be1203c0843d00000201a8c00700040302"
      "01bb012912c6f00900a0c21e0000178a01c9eb18811203a0c21e01010201a8c0"
      "090008070605bb012ffd4e380801c0843d0101c60a01fe0e7d";
  std::vector<std::uint8_t> fixture;
  for (const char* p = kHex; p[0] != '\0' && p[1] != '\0'; p += 2) {
    auto nib = [](char c) {
      return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    };
    fixture.push_back(static_cast<std::uint8_t>((nib(p[0]) << 4) | nib(p[1])));
  }
  ASSERT_EQ(fixture.size(), 121u);

  TraceWriter::Meta m;
  m.scenario = "fx";
  m.seed = 0x1122334455667788ull;
  m.avs_domain = "a";
  m.google_domain = "g";
  TraceWriter w{m};
  w.dns_answer(trace::kDomainAvs, net::IpAddress{1, 2, 3, 4}, at_ms(1));
  const int f0 = w.add_flow(
      net::Protocol::kTcp,
      net::Endpoint{net::IpAddress{192, 168, 1, 2}, net::Port{7}},
      net::Endpoint{net::IpAddress{1, 2, 3, 4}, net::Port{443}}, at_ms(2));
  w.tls_record(f0, true, net::TlsContentType::kApplicationData, 138,
               sim::TimePoint{2'500'000});
  const int f1 = w.add_flow(
      net::Protocol::kUdp,
      net::Endpoint{net::IpAddress{192, 168, 1, 2}, net::Port{9}},
      net::Endpoint{net::IpAddress{5, 6, 7, 8}, net::Port{443}}, at_ms(3));
  w.datagram(f1, false, 1350, at_ms(4));
  EXPECT_EQ(w.finish(), fixture);

  const TraceReader t = TraceReader::parse(fixture);
  EXPECT_EQ(t.meta().scenario, "fx");
  EXPECT_EQ(t.meta().seed, 0x1122334455667788ull);
  EXPECT_EQ(t.meta().avs_domain, "a");
  EXPECT_EQ(t.meta().google_domain, "g");
  ASSERT_EQ(t.records().size(), 5u);
  ASSERT_EQ(t.flows().size(), 2u);
  EXPECT_EQ(t.records()[0].kind, FrameKind::kDnsAnswer);
  EXPECT_EQ(t.records()[0].dns_answer, (net::IpAddress{1, 2, 3, 4}));
  EXPECT_EQ(t.records()[2].kind, FrameKind::kTlsRecord);
  EXPECT_EQ(t.records()[2].when.ns(), 2'500'000);
  EXPECT_EQ(t.records()[2].length, 138u);
  EXPECT_TRUE(t.records()[2].upstream);
  EXPECT_EQ(t.flows()[1].protocol, net::Protocol::kUdp);
  EXPECT_EQ(t.flows()[1].server.port, 443);
  EXPECT_EQ(t.records()[4].kind, FrameKind::kDatagram);
  EXPECT_FALSE(t.records()[4].upstream);
  EXPECT_EQ(t.records()[4].length, 1350u);
  EXPECT_EQ(t.end_time().ns(), 4'000'000);
}

// --- round-trip properties --------------------------------------------------

TEST(TraceRoundTrip, DecodedRecordsMatchWhatWasWritten) {
  std::mt19937_64 prng{7};
  for (int iter = 0; iter < 50; ++iter) {
    TraceWriter w{small_meta()};
    struct Written {
      FrameKind kind;
      std::int64_t ns;
      int flow;
      bool up;
      std::uint32_t len;
    };
    std::vector<Written> expect;
    std::int64_t t = 0;
    int flows = 0;
    const int n = 1 + static_cast<int>(prng() % 60);
    for (int i = 0; i < n; ++i) {
      t += static_cast<std::int64_t>(prng() % 5'000'000'000ull);
      const int kind = flows == 0 ? 3 : static_cast<int>(prng() % 4);
      switch (kind) {
        case 0: {
          const int f = static_cast<int>(prng() % flows);
          const bool up = prng() % 2 == 0;
          const std::uint32_t len = static_cast<std::uint32_t>(prng());
          w.tls_record(f, up, net::TlsContentType::kApplicationData, len,
                       sim::TimePoint{t});
          expect.push_back({FrameKind::kTlsRecord, t, f, up, len});
          break;
        }
        case 1: {
          const int f = static_cast<int>(prng() % flows);
          const bool up = prng() % 2 == 0;
          const std::uint32_t len = static_cast<std::uint32_t>(prng() % 65536);
          w.datagram(f, up, len, sim::TimePoint{t});
          expect.push_back({FrameKind::kDatagram, t, f, up, len});
          break;
        }
        case 2:
          w.dns_answer(prng() % 2 == 0 ? trace::kDomainAvs
                                       : trace::kDomainGoogle,
                       net::IpAddress{static_cast<std::uint32_t>(prng())},
                       sim::TimePoint{t});
          expect.push_back({FrameKind::kDnsAnswer, t, -1, true, 0});
          break;
        default: {
          const int f = w.add_flow(
              net::Protocol::kUdp,
              net::Endpoint{kSpeaker,
                            static_cast<net::Port>(40000 + flows)},
              net::Endpoint{net::IpAddress{static_cast<std::uint32_t>(prng())},
                            net::Port{443}},
              sim::TimePoint{t});
          EXPECT_EQ(f, flows);
          ++flows;
          expect.push_back({FrameKind::kFlowBegin, t, f, true, 0});
          break;
        }
      }
    }
    const TraceReader r = TraceReader::parse(w.finish());
    ASSERT_EQ(r.records().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const trace::TraceRecord& rec = r.records()[i];
      EXPECT_EQ(rec.kind, expect[i].kind);
      EXPECT_EQ(rec.when.ns(), expect[i].ns);
      if (expect[i].flow >= 0) EXPECT_EQ(rec.flow, expect[i].flow);
      if (expect[i].kind == FrameKind::kTlsRecord ||
          expect[i].kind == FrameKind::kDatagram) {
        EXPECT_EQ(rec.upstream, expect[i].up);
        EXPECT_EQ(rec.length, expect[i].len);
      }
    }
  }
}

TEST(TraceRoundTrip, WriterIsDeterministic) {
  TraceWriter a = avs_flow_writer();
  TraceWriter b = avs_flow_writer();
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(TraceRoundTrip, WriterRejectsMisuse) {
  TraceWriter w{small_meta()};
  EXPECT_THROW(w.tls_record(0, true, net::TlsContentType::kApplicationData,
                            10, at_ms(1)),
               TraceError);  // no such flow yet
  const int f = w.add_flow(net::Protocol::kTcp,
                           net::Endpoint{kSpeaker, net::Port{1}},
                           net::Endpoint{kAvs, net::Port{443}}, at_ms(5));
  EXPECT_THROW(w.datagram(f + 1, true, 10, at_ms(6)), TraceError);
  EXPECT_THROW(w.dns_answer(9, kAvs, at_ms(6)), TraceError);
  // Time must not run backwards.
  EXPECT_THROW(w.tls_record(f, true, net::TlsContentType::kApplicationData,
                            10, at_ms(4)),
               TraceError);
  w.finish();
  EXPECT_THROW(w.tls_record(f, true, net::TlsContentType::kApplicationData,
                            10, at_ms(10)),
               TraceError);  // fed after finish
}

TEST(TraceRoundTrip, FaultAnnotationsRoundTrip) {
  TraceWriter w = avs_flow_writer();
  w.fault(8, 45, at_ms(5000));  // fcm-degraded, 45 % drop
  add_spike(w, 6000, {134, 679, 1402});
  w.fault(12, 0, at_ms(9000));  // guard-restart
  const TraceReader r = TraceReader::parse(w.finish());

  std::vector<const trace::TraceRecord*> faults;
  for (const auto& rec : r.records()) {
    if (rec.kind == FrameKind::kFault) faults.push_back(&rec);
  }
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0]->fault_code, 8u);
  EXPECT_EQ(faults[0]->fault_param, 45u);
  EXPECT_EQ(faults[0]->when, at_ms(5000));
  EXPECT_EQ(faults[1]->fault_code, 12u);
  for (std::uint8_t c = 0; c <= trace::kMaxFaultCode; ++c) {
    EXPECT_GT(std::string{trace::fault_code_name(c)}.size(), 0u)
        << "code " << int{c};
  }
}

TEST(TraceRoundTrip, FaultAnnotationsDoNotPerturbRecognition) {
  // The same traffic with and without fault frames must recognize the same
  // spikes: annotations are metadata, not packets.
  TraceWriter with = avs_flow_writer();
  with.fault(0, 1, at_ms(4000));
  add_spike(with, 6000, {134, 679, 1402});
  with.fault(1, 1, at_ms(9000));
  TraceWriter without = avs_flow_writer();
  add_spike(without, 6000, {134, 679, 1402});

  const trace::ReplayResult a = replay(with);
  const trace::ReplayResult b = replay(without);
  EXPECT_EQ(a.fault_frames, 2u);
  EXPECT_EQ(b.fault_frames, 0u);
  ASSERT_EQ(a.spikes.size(), b.spikes.size());
  for (std::size_t i = 0; i < a.spikes.size(); ++i) {
    EXPECT_EQ(a.spikes[i].cls, b.spikes[i].cls);
    EXPECT_EQ(a.spikes[i].start, b.spikes[i].start);
  }
}

TEST(TraceRoundTrip, WriterRejectsBadFaultCode) {
  TraceWriter w{small_meta()};
  w.fault(trace::kMaxFaultCode, 0, at_ms(1));  // the last valid code
  EXPECT_THROW(w.fault(trace::kMaxFaultCode + 1, 0, at_ms(2)), TraceError);
}

// --- corrupted-file rejection -----------------------------------------------

std::vector<std::uint8_t> valid_bytes() {
  TraceWriter w = avs_flow_writer();
  return w.finish();
}

TEST(TraceCorruption, BadMagicRejected) {
  std::vector<std::uint8_t> b = valid_bytes();
  b[0] ^= 0xFF;
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

TEST(TraceCorruption, BadVersionRejected) {
  std::vector<std::uint8_t> b = valid_bytes();
  b[4] = 9;
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

TEST(TraceCorruption, ReservedFlagsRejected) {
  std::vector<std::uint8_t> b = valid_bytes();
  b[6] = 1;
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

TEST(TraceCorruption, EveryTruncationRejected) {
  const std::vector<std::uint8_t> b = valid_bytes();
  // Any proper prefix must fail cleanly: either a short read inside a frame
  // or a frame count that no longer matches the header. Never UB.
  for (std::size_t n = 0; n < b.size(); ++n) {
    const std::vector<std::uint8_t> cut(b.begin(),
                                        b.begin() + static_cast<long>(n));
    EXPECT_THROW((void)TraceReader::parse(cut), TraceError) << "prefix " << n;
  }
}

TEST(TraceCorruption, FlippedPayloadByteFailsCrc) {
  const std::vector<std::uint8_t> b = valid_bytes();
  // The first frame starts right after the header strings; find it by
  // parsing once, then flip one byte inside every frame payload.
  const std::size_t header =
      4 + 2 + 2 + 8 + 8 + (2 + small_meta().scenario.size()) +
      (2 + small_meta().avs_domain.size()) +
      (2 + small_meta().google_domain.size());
  std::size_t off = header;
  int frames = 0;
  while (off < b.size()) {
    const std::uint8_t size = b[off];
    std::vector<std::uint8_t> bad = b;
    bad[off + 1] ^= 0x40;  // first payload byte (the frame kind)
    EXPECT_THROW((void)TraceReader::parse(bad), TraceError)
        << "frame at " << off;
    off += 1 + size + 4;
    ++frames;
  }
  EXPECT_GT(frames, 10);
  EXPECT_EQ(off, b.size());
}

TEST(TraceCorruption, ZeroFrameSizeRejected) {
  TraceWriter w{small_meta()};
  std::vector<std::uint8_t> b = w.finish();
  b.push_back(0);  // frame with size 0
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

TEST(TraceCorruption, FrameCountMismatchRejected) {
  std::vector<std::uint8_t> b = valid_bytes();
  b[trace::kFrameCountOffset] ^= 0x01;
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

namespace {
/// Appends a syntactically framed payload (valid size + CRC) so parsing
/// reaches the payload decode, then patches the header frame count so the
/// count check cannot mask the decode error.
std::vector<std::uint8_t> with_crafted_frame(
    std::vector<std::uint8_t> payload) {
  TraceWriter w{small_meta()};
  std::vector<std::uint8_t> b = w.finish();
  b.push_back(static_cast<std::uint8_t>(payload.size()));
  b.insert(b.end(), payload.begin(), payload.end());
  trace::put_u32(b, trace::crc32(payload.data(), payload.size()));
  b[trace::kFrameCountOffset] = 1;
  return b;
}
}  // namespace

TEST(TraceCorruption, UnknownFrameKindRejected) {
  EXPECT_THROW((void)TraceReader::parse(with_crafted_frame({0x77, 0x00})),
               TraceError);
}

TEST(TraceCorruption, RecordOnUndefinedFlowRejected) {
  // kind=tls-record, dt=0, flow=5 (never defined), dir=0, type=23, len=1
  EXPECT_THROW(
      (void)TraceReader::parse(with_crafted_frame({0, 0, 5, 0, 23, 1})),
      TraceError);
}

TEST(TraceCorruption, BadDirectionByteRejected) {
  // One legitimate flow, then a hand-framed record with direction byte 2.
  TraceWriter w{small_meta()};
  w.add_flow(net::Protocol::kTcp, net::Endpoint{kSpeaker, net::Port{1}},
             net::Endpoint{kAvs, net::Port{443}}, at_ms(1));
  std::vector<std::uint8_t> b = w.finish();
  const std::vector<std::uint8_t> payload = {0, 0, 0, 2, 23, 1};
  b.push_back(static_cast<std::uint8_t>(payload.size()));
  b.insert(b.end(), payload.begin(), payload.end());
  trace::put_u32(b, trace::crc32(payload.data(), payload.size()));
  b[trace::kFrameCountOffset] = 2;
  EXPECT_THROW((void)TraceReader::parse(b), TraceError);
}

TEST(TraceCorruption, OverlongVarintRejected) {
  // An 11-byte varint overflows 64 bits; the cursor must throw, not wrap.
  EXPECT_THROW((void)TraceReader::parse(with_crafted_frame(
                   {0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                    0xFF, 0x7F})),
               TraceError);
}

TEST(TraceCorruption, BadFaultCodeRejected) {
  // kind=fault, dt=0, code=15 (> kMaxFaultCode), param=0.
  EXPECT_THROW((void)TraceReader::parse(with_crafted_frame({4, 0, 15, 0})),
               TraceError);
}

TEST(TraceCorruption, TrailingPayloadBytesRejected) {
  // A DNS frame with one extra byte after the answer IP.
  EXPECT_THROW((void)TraceReader::parse(
                   with_crafted_frame({2, 0, 0, 1, 2, 3, 4, 99})),
               TraceError);
}

// --- Replayer semantics -----------------------------------------------------

TEST(Replayer, RecognizesP138CommandSpike) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {138, 900, 1200});
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 1u);
  EXPECT_EQ(r.spikes[0].flow_id, 1u);
  EXPECT_FALSE(r.spikes[0].udp);
  EXPECT_EQ(r.spikes[0].start, at_ms(5000));
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kCommand);
  EXPECT_EQ(r.spikes[0].rule, guard::MatchedRule::kP138);
  // The verdict landed on the first packet; like the live guard, the prefix
  // stops growing once the spike is classified.
  EXPECT_EQ(r.spikes[0].prefix, (std::vector<std::uint32_t>{138}));
}

TEST(Replayer, RecognizesResponsePair) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {180, 77, 33});
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 1u);
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kResponse);
  EXPECT_EQ(r.spikes[0].rule, guard::MatchedRule::kResponsePair);
}

TEST(Replayer, HeartbeatsNeverStartSpikes) {
  TraceWriter w = avs_flow_writer();
  for (int i = 0; i < 10; ++i) add_spike(w, 5000 + i * 4000, {41});
  const trace::ReplayResult r = replay(w);
  EXPECT_EQ(r.spikes.size(), 0u);
  EXPECT_EQ(r.heartbeats, 10u);
}

TEST(Replayer, HeartbeatDoesNotResetIdleClock) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {138});
  // A heartbeat 2 s later must not extend the spike's idle window: the next
  // record 2 s after the heartbeat is 4 s after the real traffic, so it
  // starts a fresh spike.
  add_spike(w, 7000, {41});
  add_spike(w, 9000, {75});
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 2u);
  EXPECT_EQ(r.spikes[1].rule, guard::MatchedRule::kP75);
}

TEST(Replayer, EstablishmentBurstIsExempt) {
  // The 16-packet signature includes lengths (131, 77, 33...) that would
  // otherwise look like spikes; inside the establishment window they must
  // classify nothing.
  TraceWriter w = avs_flow_writer();
  const trace::ReplayResult r = replay(w);
  EXPECT_EQ(r.spikes.size(), 0u);
  EXPECT_EQ(r.avs_flows, 1u);
}

TEST(Replayer, ContinuationDoesNotSplitSpike) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {99, 98});
  add_spike(w, 6500, {97});  // 1.5 s gap: same spike window, already decided
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 1u);
  // The classify timeout fired at +300 ms, before the continuation record,
  // so only the first two lengths reached the classifier.
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kUnknown);
  EXPECT_EQ(r.spikes[0].prefix, (std::vector<std::uint32_t>{99, 98}));
}

TEST(Replayer, IdleGapStartsNewSpike) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {138});
  add_spike(w, 8100, {138});  // > 3 s after the previous record
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 2u);
}

TEST(Replayer, TimeoutFinalizesUndecidedSpike) {
  TraceWriter w = avs_flow_writer();
  add_spike(w, 5000, {500, 131});  // could still become a fixed pattern
  const trace::ReplayResult r = replay(w);
  ASSERT_EQ(r.spikes.size(), 1u);
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kUnknown);
  EXPECT_EQ(r.spikes[0].rule, guard::MatchedRule::kNone);
}

TEST(Replayer, SignatureAdoptionTracksSilentIpMove) {
  TraceWriter w = avs_flow_writer();
  // A second flow to an unknown IP that replays the establishment signature:
  // the recognizer must adopt it as the new AVS IP and classify its spikes.
  const net::IpAddress moved{10, 0, 0, 7};
  const int f = w.add_flow(net::Protocol::kTcp,
                           net::Endpoint{kSpeaker, net::Port{50002}},
                           net::Endpoint{moved, net::Port{443}}, at_ms(60000));
  const auto& sig = guard::GuardBox::avs_signature();
  for (std::size_t i = 0; i < sig.size(); ++i) {
    w.tls_record(f, true, net::TlsContentType::kApplicationData, sig[i],
                 at_ms(60010 + static_cast<std::int64_t>(i)));
  }
  add_spike(w, 65000, {138}, f);
  const trace::ReplayResult r = replay(w);
  EXPECT_EQ(r.avs_signature_updates, 1u);
  ASSERT_EQ(r.spikes.size(), 1u);
  EXPECT_EQ(r.spikes[0].flow_id, 2u);
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kCommand);
}

TEST(Replayer, NonSignatureFlowStaysUnmonitored) {
  TraceWriter w = avs_flow_writer();
  const int f = w.add_flow(
      net::Protocol::kTcp, net::Endpoint{kSpeaker, net::Port{50002}},
      net::Endpoint{net::IpAddress{10, 9, 9, 9}, net::Port{443}}, at_ms(60000));
  add_spike(w, 60010, {138, 138, 138}, f);  // would be a command if monitored
  const trace::ReplayResult r = replay(w);
  EXPECT_EQ(r.spikes.size(), 0u);
  EXPECT_EQ(r.unmonitored_flows, 1u);
}

TEST(Replayer, GoogleQuicSpikesAreSegmented) {
  TraceWriter w{small_meta()};
  const net::IpAddress goog{10, 0, 0, 9};
  w.dns_answer(trace::kDomainGoogle, goog, at_ms(100));
  const int f = w.add_flow(net::Protocol::kUdp,
                           net::Endpoint{kSpeaker, net::Port{40000}},
                           net::Endpoint{goog, net::Port{443}}, at_ms(200));
  w.datagram(f, true, 700, at_ms(200));
  w.datagram(f, true, 1350, at_ms(210));
  w.datagram(f, false, 900, at_ms(300));  // downstream never classified
  w.datagram(f, true, 700, at_ms(5000));  // new spike after idle
  const trace::ReplayResult r = replay(w);
  EXPECT_EQ(r.google_flows, 1u);
  ASSERT_EQ(r.spikes.size(), 2u);
  EXPECT_TRUE(r.spikes[0].udp);
  EXPECT_EQ(r.spikes[0].prefix, (std::vector<std::uint32_t>{700, 1350}));
}

TEST(Replayer, VoiceGuardModeForcesGoogleCommands) {
  TraceWriter w{small_meta()};
  const net::IpAddress goog{10, 0, 0, 9};
  w.dns_answer(trace::kDomainGoogle, goog, at_ms(100));
  const int f = w.add_flow(net::Protocol::kUdp,
                           net::Endpoint{kSpeaker, net::Port{40000}},
                           net::Endpoint{goog, net::Port{443}}, at_ms(200));
  w.datagram(f, true, 700, at_ms(200));
  trace::ReplayOptions opts;
  opts.mode = guard::GuardMode::kVoiceGuard;
  const trace::ReplayResult r =
      trace::Replayer{opts}.run(TraceReader::parse(w.finish()));
  ASSERT_EQ(r.spikes.size(), 1u);
  EXPECT_EQ(r.spikes[0].cls, guard::SpikeClass::kCommand);
  EXPECT_EQ(r.spikes[0].rule, guard::MatchedRule::kNone);
}

}  // namespace
