#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simcore/Callback.h"
#include "simcore/EventQueue.h"
// Defines the counting global operator new/delete for this binary; used to
// assert that EventQueue::schedule does not allocate on the hot path.
#include "testutil/CountingAllocator.h"

namespace vg::sim {
namespace {

// ---------------------------------------------------------------------------
// UniqueFunction
// ---------------------------------------------------------------------------

TEST(UniqueFunction, InlineForSmallCaptures) {
  int a = 0, b = 0, c = 0;
  auto small = [&a, &b, &c] { ++a; ++b; ++c; };
  static_assert(UniqueFunction<void()>::stored_inline<decltype(small)>(),
                "a three-pointer capture must fit the inline buffer");
  UniqueFunction<void()> f{small};
  f();
  EXPECT_EQ(a + b + c, 3);
}

TEST(UniqueFunction, AcceptsMoveOnlyCallables) {
  auto p = std::make_unique<int>(41);
  UniqueFunction<int()> f{[q = std::move(p)] { return *q + 1; }};
  UniqueFunction<int()> g{std::move(f)};
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(), 42);
}

TEST(UniqueFunction, HeapFallbackForLargeCaptures) {
  struct Big {
    char bytes[128];
  };
  Big big{};
  big.bytes[0] = 7;
  auto large = [big] { return big.bytes[0]; };
  static_assert(!UniqueFunction<char()>::stored_inline<decltype(large)>());
  UniqueFunction<char()> f{large};
  UniqueFunction<char()> g{std::move(f)};
  EXPECT_EQ(g(), 7);
}

// ---------------------------------------------------------------------------
// EventQueue: zero-allocation scheduling
// ---------------------------------------------------------------------------

TEST(EventQueue, ScheduleDoesNotAllocateForSmallCallbacks) {
  EventQueue q;
  int sink = 0;
  // Warm the slot table and heap capacity past the steady-state depth.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.schedule(TimePoint{i}, [&sink] { ++sink; });
    }
    while (!q.empty()) q.pop().cb();
  }

  int *a = &sink, *b = &sink, *c = &sink;
  const std::size_t before = testutil::allocation_count();
  for (int i = 0; i < 256; ++i) {
    q.schedule(TimePoint{i}, [a, b, c] { ++*a; ++*b; ++*c; });
  }
  EXPECT_EQ(testutil::allocation_count(), before)
      << "schedule() allocated for a <=3-pointer callback";
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(sink, 4 * 256 + 3 * 256);
}

// ---------------------------------------------------------------------------
// EventQueue: bounded internal memory under schedule/cancel/pop churn
// ---------------------------------------------------------------------------

TEST(EventQueue, InternalSizeBoundedUnderCancelChurn) {
  // Regression for the seed implementation, where ids cancelled while deep in
  // the heap were never erased: heap and cancelled-set grew with total churn.
  EventQueue q;
  // A handful of long-lived events keep the queue non-empty throughout.
  for (int i = 0; i < 8; ++i) q.schedule(TimePoint{1'000'000 + i}, [] {});

  for (int i = 0; i < 100'000; ++i) {
    // Far-future event, cancelled immediately: never reaches the heap top.
    EventId id = q.schedule(TimePoint{2'000'000 + i}, [] {});
    q.cancel(id);
  }
  EXPECT_EQ(q.size(), 8u);
  // Slots are reused: churn must not grow the slot table...
  EXPECT_LE(q.slot_count(), 64u);
  // ...and lazy compaction must keep stale heap entries bounded by a small
  // multiple of the live count, not by the 100k total cancels.
  EXPECT_LE(q.heap_size(), 256u);
}

TEST(EventQueue, PopAndSkipReclaimCancelledEntries) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(TimePoint{i}, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  int fired = 0;
  while (!q.empty()) {
    q.pop().cb();
    ++fired;
  }
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(q.heap_size(), 0u);
  // The freed slots are all reusable: scheduling again grows nothing.
  const std::size_t slots = q.slot_count();
  for (int i = 0; i < 1000; ++i) q.schedule(TimePoint{i}, [] {});
  EXPECT_EQ(q.slot_count(), slots);
}

// ---------------------------------------------------------------------------
// EventQueue: edge cases the rewrite must preserve
// ---------------------------------------------------------------------------

TEST(EventQueue, FifoTieBreakSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.schedule(TimePoint{100}, [&order, i] { order.push_back(i); }));
  }
  // Cancelling some same-timestamp events must not perturb the FIFO order of
  // the survivors, even though cancels free slots for reuse.
  q.cancel(ids[1]);
  q.cancel(ids[4]);
  q.cancel(ids[8]);
  q.schedule(TimePoint{100}, [&order] { order.push_back(10); });  // reuses a slot
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6, 7, 9, 10}));
}

TEST(EventQueue, CancelAfterFireIsNoopEvenWithSlotReuse) {
  EventQueue q;
  int a_fired = 0, b_fired = 0;
  EventId a = q.schedule(TimePoint{10}, [&] { ++a_fired; });
  q.pop().cb();  // fires A; its slot returns to the free list
  // B reuses A's slot; the stale handle must not be able to cancel it.
  q.schedule(TimePoint{20}, [&] { ++b_fired; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(b_fired, 1);
}

TEST(EventQueue, DoubleCancelAcrossSlotReuseIsSafe) {
  EventQueue q;
  bool fired = false;
  EventId a = q.schedule(TimePoint{10}, [] {});
  q.cancel(a);
  EventId b = q.schedule(TimePoint{10}, [&] { fired = true; });  // reuses slot
  q.cancel(a);  // stale: must not hit B
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_TRUE(fired);
  (void)b;
}

TEST(EventQueue, ScheduleDuringPopInterleaves) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{10}, [&] {
    order.push_back(1);
    // Scheduled from inside a fired callback, at a time between the two
    // remaining events: must slot into the right position.
    q.schedule(TimePoint{15}, [&] { order.push_back(2); });
  });
  q.schedule(TimePoint{20}, [&] { order.push_back(3); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleAtSameTimeDuringPopRunsAfterExisting) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{10}, [&] {
    order.push_back(1);
    q.schedule(TimePoint{10}, [&] { order.push_back(3); });  // same tick, later seq
  });
  q.schedule(TimePoint{10}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DefaultEventIdCancelIsNoop) {
  EventQueue q;
  q.schedule(TimePoint{10}, [] {});
  q.cancel(EventId{});  // value 0: never a live event
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------------
// EventQueue: peek() and shrink() — the wake-calendar / hibernation hooks
// ---------------------------------------------------------------------------

TEST(EventQueue, PeekReportsEarliestPendingAndSkipsCancelled) {
  EventQueue q;
  EXPECT_FALSE(q.peek().has_value());

  const EventId early = q.schedule(TimePoint{10}, [] {});
  q.schedule(TimePoint{20}, [] {});
  ASSERT_TRUE(q.peek().has_value());
  EXPECT_EQ(q.peek()->ns(), 10);

  // Cancelling the front event must not leave peek() reporting a ghost.
  q.cancel(early);
  ASSERT_TRUE(q.peek().has_value());
  EXPECT_EQ(q.peek()->ns(), 20);

  q.pop().cb();
  EXPECT_FALSE(q.peek().has_value());
}

TEST(EventQueue, PeekDoesNotPerturbFireOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(TimePoint{100 - i}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    (void)q.peek();  // observation only
    q.pop().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(EventQueue, ShrinkDropsSlabAndKeepsLiveEvents) {
  EventQueue q;
  // Blow the slot table and heap up with churn, leaving a few live events.
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.schedule(TimePoint{1000 + i}, [] {}));
  }
  int fired = 0;
  // Keep the ten earliest alive; the rest free their slots, leaving a long
  // free tail for shrink() to drop (live slots never move, so only trailing
  // free slots are reclaimable).
  for (std::size_t i = 10; i < ids.size(); ++i) q.cancel(ids[i]);
  const std::size_t fat_slots = q.slot_count();
  ASSERT_GE(fat_slots, 2000u);

  q.shrink();
  EXPECT_LE(q.slot_count(), 10u);
  EXPECT_EQ(q.heap_size(), q.size());  // no stale entries survive a shrink

  while (!q.empty()) {
    q.pop().cb();
    ++fired;
  }
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, StaleIdCannotCancelRebornSlotAfterShrink) {
  EventQueue q;
  // Fill and free a tall slot table so shrink() drops trailing slots.
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(q.schedule(TimePoint{10 + i}, [] {}));
  }
  // Keep slot 0's event alive so the queue stays non-trivial; cancel the rest.
  for (std::size_t i = 1; i < ids.size(); ++i) q.cancel(ids[i]);
  q.shrink();

  // New events reuse the dropped index range. The old (pre-shrink) handles
  // must not alias them: generations restart past every dropped generation.
  bool reborn_fired = false;
  q.schedule(TimePoint{5}, [&] { reborn_fired = true; });
  for (std::size_t i = 1; i < ids.size(); ++i) q.cancel(ids[i]);  // all stale
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_TRUE(reborn_fired);
}

TEST(EventQueue, ScheduleAfterShrinkBehavesNormally) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) q.schedule(TimePoint{i}, [] {});
  while (!q.empty()) q.pop().cb();
  q.shrink();  // empty queue: everything drops

  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, MoveOnlyCallbackThroughQueue) {
  EventQueue q;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q.schedule(TimePoint{1},
             [&seen, p = std::move(payload)] { seen = *p; });
  q.pop().cb();
  EXPECT_EQ(seen, 7);
}

}  // namespace
}  // namespace vg::sim
