/// Tests for the §VII extension features: adaptive signature learning, the
/// composite decision framework, and multi-speaker deployments.

#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "home/Testbed.h"
#include "speaker/EchoDot.h"
#include "voiceguard/VoiceGuard.h"  // umbrella header: compile coverage

namespace vg {
namespace {

using net::IpAddress;

// ---------------------------------------------------------------------------
// SignatureLearner unit behaviour
// ---------------------------------------------------------------------------

TEST(SignatureLearner, SeededSignatureUsedUntilEvidence) {
  guard::SignatureLearner l;
  l.seed({1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(l.signature(), (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_FALSE(l.observe({9, 9, 9, 9, 9, 9, 9, 9}));
  EXPECT_FALSE(l.observe({9, 9, 9, 9, 9, 9, 9, 9}));
  // Still the seed: only two examples.
  EXPECT_EQ(l.signature().front(), 1u);
}

TEST(SignatureLearner, ConsensusRepublishes) {
  guard::SignatureLearner l;
  l.seed({1, 2, 3, 4, 5, 6});
  const std::vector<std::uint32_t> fresh{9, 8, 7, 6, 5, 4, 3, 2};
  EXPECT_FALSE(l.observe(fresh));
  EXPECT_FALSE(l.observe(fresh));
  EXPECT_TRUE(l.observe(fresh));  // third agreeing example
  EXPECT_EQ(l.signature(), fresh);
  EXPECT_EQ(l.republished(), 1u);
}

TEST(SignatureLearner, DivergentExamplesDoNotRepublish) {
  guard::SignatureLearner l;
  l.seed({1, 2, 3, 4, 5, 6});
  // Three examples sharing only a 3-length prefix: too short to publish.
  EXPECT_FALSE(l.observe({7, 7, 7, 1, 1, 1, 1}));
  EXPECT_FALSE(l.observe({7, 7, 7, 2, 2, 2, 2}));
  EXPECT_FALSE(l.observe({7, 7, 7, 3, 3, 3, 3}));
  EXPECT_EQ(l.signature().front(), 1u);  // still the seed
}

TEST(SignatureLearner, NeverShrinksToAStrictPrefix) {
  guard::SignatureLearner l;
  const std::vector<std::uint32_t> full{1, 2, 3, 4, 5, 6, 7, 8};
  l.seed(full);
  // Examples agreeing on a strict prefix of the current signature (e.g. the
  // tail got cut by early command traffic) must not loosen the matcher.
  const std::vector<std::uint32_t> prefix{1, 2, 3, 4, 5, 6};
  l.observe(prefix);
  l.observe(prefix);
  EXPECT_FALSE(l.observe(prefix));
  EXPECT_EQ(l.signature(), full);
}

TEST(SignatureLearner, ExamplesAreTruncatedToWindowPrefix) {
  guard::SignatureLearner::Options o;
  o.example_prefix = 4;
  o.min_length = 4;
  guard::SignatureLearner l{o};
  std::vector<std::uint32_t> longer{1, 2, 3, 4, 99, 98};
  l.observe(longer);
  l.observe(longer);
  EXPECT_TRUE(l.observe(longer));
  EXPECT_EQ(l.signature(), (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Adaptive signature learning end-to-end: the speaker's establishment shape
// changes (a "firmware update"), and the guard re-learns it from
// DNS-identified connections, then re-identifies a DNS-less reconnect.
// ---------------------------------------------------------------------------

struct AdaptiveWorld {
  sim::Simulation sim{31};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm;
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};
  guard::FixedDecisionModule decision{sim, true, sim::milliseconds(500)};
  guard::GuardBox guard;

  AdaptiveWorld()
      : farm(net, router,
             [] {
               cloud::CloudFarm::Options o;
               o.avs_migration_mean = sim::Duration{0};
               return o;
             }()),
        guard(net, "guard", decision, [] {
          guard::GuardBox::Options o;
          o.speaker_ips = {IpAddress(192, 168, 1, 200)};
          return o;
        }()) {
    net::Link& lan = net.add_link(speaker_host, guard, sim::milliseconds(2));
    speaker_host.attach(lan);
    guard.set_lan_link(lan);
    net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
    guard.set_wan_link(up);
    router.add_route(speaker_host.ip(), up);
  }
};

TEST(AdaptiveSignatures, RelearnsChangedEstablishmentShape) {
  AdaptiveWorld w;
  // A "firmware update" changed the establishment sequence entirely.
  const std::vector<std::uint32_t> new_sig = {99, 45, 801, 150, 82, 150,
                                              201, 82, 150, 82};
  speaker::EchoDotModel::Options opts;
  opts.establishment_signature = new_sig;
  opts.misc_connection_mean = sim::Duration{0};
  opts.dns_on_reconnect_prob = 1.0;  // teach via DNS-identified connections
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));

  // Three DNS-visible (re)connections are enough for consensus.
  for (int i = 0; i < 3; ++i) {
    w.farm.migrate_avs_now();
    w.sim.run_until(w.sim.now() + sim::seconds(20));
  }
  ASSERT_TRUE(echo.connected());
  EXPECT_GE(w.guard.signature_learner().republished(), 1u);
  EXPECT_EQ(w.guard.signature_learner().signature(), new_sig);

  // Now a DNS-less reconnect: the old shipped signature would never match,
  // but the learned one re-identifies the AVS flow and updates the IP.
  // (The speaker options cannot change at runtime, so assert via the
  // matcher directly.)
  guard::SignatureMatcher m{w.guard.signature_learner().signature()};
  for (std::uint32_t len : new_sig) m.feed(len);
  EXPECT_EQ(m.state(), guard::SignatureMatcher::State::kMatched);
}

TEST(AdaptiveSignatures, DnslessReconnectReidentifiedWithNewShape) {
  AdaptiveWorld w;
  const std::vector<std::uint32_t> new_sig = {99, 45, 801, 150, 82, 150,
                                              201, 82, 150, 82};
  speaker::EchoDotModel::Options opts;
  opts.establishment_signature = new_sig;
  opts.misc_connection_mean = sim::Duration{0};
  opts.dns_on_reconnect_prob = 0.5;  // mixed: some reconnects have no DNS
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));

  // Enough migrations that both DNS-visible (teaching) and DNS-less
  // (re-identification) reconnects occur.
  for (int i = 0; i < 10; ++i) {
    w.farm.migrate_avs_now();
    w.sim.run_until(w.sim.now() + sim::seconds(20));
  }
  ASSERT_TRUE(echo.connected());
  ASSERT_GE(echo.dnsless_reconnects(), 1u);
  // The guard ends in sync with the farm despite the changed signature.
  EXPECT_EQ(w.guard.tracked_avs_ip(), w.farm.current_avs_ip());
  EXPECT_GE(w.guard.avs_ip_updates_from_signature(), 1u);

  // And commands still get recognized and held on the final connection.
  speaker::CommandSpec c;
  c.id = 5;
  c.words = 6;
  echo.hear_command(c);
  w.sim.run_until(w.sim.now() + sim::seconds(60));
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  EXPECT_GE(w.guard.commands_released(), 1u);
}

// ---------------------------------------------------------------------------
// Composite decision framework
// ---------------------------------------------------------------------------

struct CompositeFixture : ::testing::Test {
  sim::Simulation sim{71};
  bool footstep_present{false};
  bool gait_present{false};
  guard::PresenceOracleModule footstep{
      sim, "footstep-id", [this] { return footstep_present; },
      sim::milliseconds(300)};
  guard::PresenceOracleModule gait{
      sim, "gait-id", [this] { return gait_present; }, sim::milliseconds(900)};

  bool query(guard::DecisionModule& m) {
    bool verdict = false, done = false;
    m.query([&](bool legit) {
      verdict = legit;
      done = true;
    });
    while (!done && sim.pending_events() > 0) sim.step(1);
    EXPECT_TRUE(done);
    return verdict;
  }
};

TEST_F(CompositeFixture, AnyPolicyAcceptsIfOneSourceConfirms) {
  guard::CompositeDecisionModule combo{sim, guard::CompositeDecisionModule::Policy::kAny};
  combo.add(footstep);
  combo.add(gait);
  EXPECT_FALSE(query(combo));
  footstep_present = true;
  EXPECT_TRUE(query(combo));
  footstep_present = false;
  gait_present = true;
  EXPECT_TRUE(query(combo));
}

TEST_F(CompositeFixture, AllPolicyRequiresEverySource) {
  guard::CompositeDecisionModule combo{sim, guard::CompositeDecisionModule::Policy::kAll};
  combo.add(footstep);
  combo.add(gait);
  footstep_present = true;
  EXPECT_FALSE(query(combo));
  gait_present = true;
  EXPECT_TRUE(query(combo));
}

TEST_F(CompositeFixture, AnyPolicyConcludesEarlyOnFastPositive) {
  guard::CompositeDecisionModule combo{sim, guard::CompositeDecisionModule::Policy::kAny};
  combo.add(footstep);  // 300 ms
  combo.add(gait);      // 900 ms
  footstep_present = true;
  const sim::TimePoint start = sim.now();
  (void)query(combo);
  // Concluded on the fast positive, well before the slow source answered.
  EXPECT_LT((sim.now() - start).seconds(), 0.6);
}

TEST_F(CompositeFixture, EmptyCompositeFailsClosed) {
  guard::CompositeDecisionModule combo{sim, guard::CompositeDecisionModule::Policy::kAny};
  EXPECT_FALSE(query(combo));
}

TEST_F(CompositeFixture, LatencyBookkeepingCoversComposite) {
  guard::CompositeDecisionModule combo{sim, guard::CompositeDecisionModule::Policy::kAll};
  combo.add(footstep);
  combo.add(gait);
  footstep_present = true;
  gait_present = true;
  (void)query(combo);
  ASSERT_EQ(combo.latencies_s().size(), 1u);
  EXPECT_NEAR(combo.latencies_s()[0], 0.9, 0.05);  // bounded by the slowest
}

// ---------------------------------------------------------------------------
// Multi-speaker deployment: two Echo Dots behind one guard, each with its
// own decision module (its own Bluetooth beacon / thresholds in real life).
// ---------------------------------------------------------------------------

TEST(MultiSpeaker, PerSpeakerDecisionRouting) {
  sim::Simulation sim{81};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, [] {
                          cloud::CloudFarm::Options o;
                          o.avs_migration_mean = sim::Duration{0};
                          return o;
                        }()};
  net::Host speaker_a{net, "echo-a", IpAddress(192, 168, 1, 200)};
  net::Host speaker_b{net, "echo-b", IpAddress(192, 168, 1, 201)};

  // Speaker A's room has the owner nearby (legit); speaker B's does not.
  guard::FixedDecisionModule decision_a{sim, true, sim::milliseconds(600)};
  guard::FixedDecisionModule decision_b{sim, false, sim::milliseconds(600)};

  guard::GuardBox::Options gopts;
  gopts.speaker_ips = {speaker_a.ip(), speaker_b.ip()};
  guard::GuardBox guard{net, "guard", decision_a, gopts};
  guard.set_decision_for(speaker_b.ip(), decision_b);

  // Both speakers hang off a small LAN switch (modeled as a Router) that
  // uplinks through the guard.
  net::Router lan_switch{"switch"};
  net::Link& la = net.add_link(speaker_a, lan_switch, sim::milliseconds(1));
  net::Link& lb = net.add_link(speaker_b, lan_switch, sim::milliseconds(1));
  speaker_a.attach(la);
  speaker_b.attach(lb);
  lan_switch.add_route(speaker_a.ip(), la);
  lan_switch.add_route(speaker_b.ip(), lb);
  net::Link& lan = net.add_link(lan_switch, guard, sim::milliseconds(1));
  lan_switch.set_default_route(lan);
  guard.set_lan_link(lan);
  net::Link& up = net.add_link(guard, router, sim::milliseconds(2));
  guard.set_wan_link(up);
  router.add_route(speaker_a.ip(), up);
  router.add_route(speaker_b.ip(), up);

  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  opts.phase1.irregular_prob = 0.0;
  speaker::EchoDotModel echo_a{speaker_a, farm.dns_endpoint(),
                               [&farm] { return farm.current_avs_ip(); }, opts};
  speaker::EchoDotModel echo_b{speaker_b, farm.dns_endpoint(),
                               [&farm] { return farm.current_avs_ip(); }, opts};
  echo_a.power_on();
  echo_b.power_on();
  sim.run_until(sim::TimePoint{} + sim::seconds(10));
  ASSERT_TRUE(echo_a.connected());
  ASSERT_TRUE(echo_b.connected());

  speaker::CommandSpec ca;
  ca.id = 1;
  ca.words = 6;
  speaker::CommandSpec cb;
  cb.id = 2;
  cb.words = 6;
  echo_a.hear_command(ca);
  echo_b.hear_command(cb);
  sim.run_until(sim::TimePoint{} + sim::seconds(90));

  // Speaker A's command executed; speaker B's was blocked by ITS module.
  const auto executed = farm.all_executed();
  ASSERT_EQ(executed.size(), 1u);
  EXPECT_EQ(executed[0].command_tag, "voice-cmd-end:1");
  EXPECT_GE(guard.commands_released(), 1u);
  EXPECT_GE(guard.commands_blocked(), 1u);
  EXPECT_EQ(decision_a.legit_verdicts(), 1u);
  EXPECT_EQ(decision_b.malicious_verdicts(), 1u);
}

}  // namespace
}  // namespace vg
