/// Pins the checked-in `.scn` ports under tests/data/scenarios/ to the
/// hand-written C++ scenario constructors: every port must load back equal
/// to its constructor's spec, be byte-identical to the canonical serializer
/// output, and — run end-to-end — reproduce the hand-written path bit for
/// bit (chaos trial stats by fingerprint, golden captures by byte).
///
/// Regenerating after an intentional format or scenario change:
///   VG_SCN_REGEN=1 ./test_scenario_ports

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/ScenarioLoader.h"
#include "scenario/Serialize.h"
#include "workload/ChaosScenarios.h"
#include "workload/ScenarioRun.h"
#include "workload/TraceScenarios.h"

namespace vg::workload {
namespace {

struct Port {
  std::string file;  // relative to tests/data/scenarios/
  scenario::ScenarioSpec spec;
};

std::vector<Port> ports() {
  std::vector<Port> out;
  for (const faults::FaultPlan& plan : chaos_plans()) {
    out.push_back({"chaos-" + plan.name + ".scn",
                   chaos_scenario_spec(ChaosSpec{.plan = plan.name})});
  }
  for (const TraceScenario& sc : trace_scenarios()) {
    out.push_back({"trace-" + sc.name + ".scn",
                   trace_scenario_spec(sc.name, sc.default_seed)});
  }
  return out;
}

std::string port_path(const std::string& file) {
  return std::string{VG_SCN_DATA_DIR} + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << path << " is missing; regenerate with "
                            << "VG_SCN_REGEN=1 ./test_scenario_ports";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool regen() { return std::getenv("VG_SCN_REGEN") != nullptr; }

TEST(ScenarioPorts, PortsMatchTheHandWrittenConstructors) {
  if (regen()) {
    for (const Port& p : ports()) {
      scenario::save_scn(p.spec, port_path(p.file));
    }
    GTEST_SKIP() << "regenerated " << ports().size() << " .scn ports";
  }
  for (const Port& p : ports()) {
    SCOPED_TRACE(p.file);
    // Byte-identical to the canonical serializer: the corpus never drifts
    // from the one canonical shape `vgscn gen` emits.
    EXPECT_EQ(read_file(port_path(p.file)), scenario::write_scn(p.spec));
    const scenario::ScenarioSpec loaded =
        scenario::ScenarioLoader::load_file(port_path(p.file));
    EXPECT_TRUE(loaded == p.spec);
  }
}

TEST(ScenarioPorts, ChaosCellsRunIdenticallyFromScn) {
  // One cell per plan, rotating guard mode / policy / seed so the override
  // path (the .scn stores the default cell) is exercised too.
  const auto& plans = chaos_plans();
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ChaosSpec cell;
    cell.plan = plans[i].name;
    cell.mode = static_cast<guard::GuardMode>(i % 3);
    cell.fail_policy = i % 2 == 0 ? guard::FailPolicy::kFailClosed
                                  : guard::FailPolicy::kFailOpen;
    cell.seed = 1 + i;
    SCOPED_TRACE(cell.plan);

    scenario::ScenarioSpec spec =
        scenario::ScenarioLoader::load_file(port_path("chaos-" + cell.plan +
                                                      ".scn"));
    spec.guard.mode = cell.mode;
    spec.guard.fail_policy = cell.fail_policy;
    spec.seed = cell.seed;

    const ChaosResult want = run_chaos(cell);
    const ChaosResult got = run_scenario_scripted(spec);
    EXPECT_EQ(got.fingerprint(), want.fingerprint());
    EXPECT_EQ(got.to_string(), want.to_string());
  }
}

TEST(ScenarioPorts, GoldenCapturesAreByteIdenticalFromScn) {
  for (const TraceScenario& sc : trace_scenarios()) {
    SCOPED_TRACE(sc.name);
    const scenario::ScenarioSpec spec =
        scenario::ScenarioLoader::load_file(port_path("trace-" + sc.name +
                                                      ".scn"));
    const TraceScenarioResult want = run_trace_scenario(sc.name);
    const TraceScenarioResult got = run_scenario_capture(spec);
    EXPECT_EQ(got.bytes, want.bytes);
    EXPECT_EQ(got.synthetic, want.synthetic);
    EXPECT_EQ(got.live_spikes.size(), want.live_spikes.size());
  }
}

}  // namespace
}  // namespace vg::workload
