#include <gtest/gtest.h>

#include <vector>

#include "home/MobileDevice.h"
#include "home/Testbed.h"
#include "radio/Propagation.h"
#include "radio/PropagationCache.h"
#include "simcore/Rng.h"
#include "simcore/Simulation.h"
#include "testutil/CountingAllocator.h"
#include "voiceguard/Recognizer.h"

namespace vg::radio {
namespace {

// ---------------------------------------------------------------------------
// Parity: the cache must return the exact doubles the uncached free functions
// produce — both the deterministic mean and the noisy sample streams (same
// RNG draw order), across all three testbeds. This is the property that lets
// BluetoothScanner adopt the cache without moving a single golden trace.
// ---------------------------------------------------------------------------

std::vector<home::Testbed> all_testbeds() {
  std::vector<home::Testbed> tb;
  tb.push_back(home::Testbed::two_floor_house());
  tb.push_back(home::Testbed::apartment());
  tb.push_back(home::Testbed::office());
  return tb;
}

TEST(PropagationCacheParity, MeanMatchesUncachedBitForBit) {
  for (const auto& tb : all_testbeds()) {
    PropagationCache cache{tb.plan(), tb.radio_params()};
    for (int dep = 1; dep <= 2; ++dep) {
      const Vec3 spk = tb.speaker_position(dep);
      for (const auto& loc : tb.locations()) {
        const double fresh =
            mean_rssi(tb.plan(), tb.radio_params(), spk, loc.pos);
        // Miss, then hit: both must equal the uncached value exactly.
        EXPECT_EQ(cache.mean_rssi(spk, loc.pos), fresh)
            << tb.name() << " #" << loc.number;
        EXPECT_EQ(cache.mean_rssi(spk, loc.pos), fresh)
            << tb.name() << " #" << loc.number << " (cached)";
      }
    }
    EXPECT_GT(cache.hits(), 0u);
  }
}

TEST(PropagationCacheParity, SampleStreamsAreByteIdentical) {
  for (const auto& tb : all_testbeds()) {
    PropagationCache cache{tb.plan(), tb.radio_params()};
    const Vec3 spk = tb.speaker_position(1);
    // Two registries with the same root seed: identical streams, one consumed
    // by the cached path and one by the uncached path.
    sim::RngRegistry cached_reg{9001}, fresh_reg{9001};
    auto& cached_rng = cached_reg.stream("s");
    auto& fresh_rng = fresh_reg.stream("s");
    for (const auto& loc : tb.locations()) {
      // Repeat per location so the second draw runs off a cache hit.
      for (int rep = 0; rep < 2; ++rep) {
        EXPECT_EQ(cache.sample_rssi(spk, loc.pos, cached_rng),
                  sample_rssi(tb.plan(), tb.radio_params(), spk, loc.pos,
                              fresh_rng))
            << tb.name() << " #" << loc.number;
      }
      EXPECT_EQ(cache.averaged_rssi(spk, loc.pos, cached_rng),
                averaged_rssi(tb.plan(), tb.radio_params(), spk, loc.pos,
                              fresh_rng))
          << tb.name() << " #" << loc.number;
    }
  }
}

// ---------------------------------------------------------------------------
// Invalidation
// ---------------------------------------------------------------------------

TEST(PropagationCache, PlanEditsInvalidateAutomatically) {
  FloorPlan plan;
  plan.add_room({"a", Rect{0, 0, 10, 10}, 0});
  PathLossParams params;
  PropagationCache cache{plan, params};
  const Vec3 tx{1, 5, 1}, rx{9, 5, 1};

  const double open = cache.mean_rssi(tx, rx);
  EXPECT_EQ(cache.mean_rssi(tx, rx), open);  // hit
  EXPECT_EQ(cache.hits(), 1u);

  // A wall between them: the plan epoch bumps, the stale mean must not be
  // served, and the new value reflects the attenuation.
  plan.add_wall({Segment{{5, 0}, {5, 10}}, 0, 6.0});
  const double blocked = cache.mean_rssi(tx, rx);
  EXPECT_EQ(blocked, mean_rssi(plan, params, tx, rx));
  EXPECT_LT(blocked, open);
}

TEST(PropagationCache, ExplicitInvalidateDropsEntries) {
  FloorPlan plan;
  plan.add_room({"a", Rect{0, 0, 10, 10}, 0});
  PropagationCache cache{plan, PathLossParams{}};
  const Vec3 tx{1, 1, 1}, rx{8, 8, 1};
  cache.mean_rssi(tx, rx);
  cache.mean_rssi(tx, rx);
  EXPECT_EQ(cache.hits(), 1u);
  cache.invalidate();
  cache.mean_rssi(tx, rx);
  EXPECT_EQ(cache.hits(), 1u);  // post-invalidate query was a miss
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PropagationCache, DeviceMovementBumpsTheScannerCache) {
  sim::Simulation sim{7};
  const auto tb = home::Testbed::two_floor_house();
  home::MobileDevice dev{sim, tb.plan(), tb.radio_params(), "phone",
                         [] { return Vec3{3, 3, 1.2}; }};
  BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  dev.instant_rssi(beacon);
  dev.instant_rssi(beacon);
  EXPECT_EQ(dev.propagation_cache().hits(), 1u);
  dev.put_down(Vec3{3, 3, 0.5});
  dev.instant_rssi(beacon);  // same-key entries were dropped by the bump
  EXPECT_EQ(dev.propagation_cache().hits(), 1u);
  EXPECT_EQ(dev.propagation_cache().misses(), 2u);
  dev.pick_up();
  dev.instant_rssi(beacon);
  EXPECT_EQ(dev.propagation_cache().misses(), 3u);
}

// ---------------------------------------------------------------------------
// Allocation regression (this TU defines the counting operator new)
// ---------------------------------------------------------------------------

TEST(PropagationCacheAlloc, CacheHitsAreAllocationFree) {
  const auto tb = home::Testbed::two_floor_house();
  PropagationCache cache{tb.plan(), tb.radio_params()};
  sim::RngRegistry reg{5};
  auto& rng = reg.stream("s");
  const Vec3 spk = tb.speaker_position(1);
  const Vec3 pos = tb.location(1).pos;
  cache.sample_rssi(spk, pos, rng);  // warm: miss + any lazy RNG state
  const std::size_t n = testutil::allocations_during([&] {
    for (int i = 0; i < 1000; ++i) cache.sample_rssi(spk, pos, rng);
  });
  EXPECT_EQ(n, 0u);
}

TEST(PropagationCacheAlloc, CacheMissesAreAllocationFreeToo) {
  // The wall-grid index is built at plan-construction time and the table is
  // direct-mapped, so even a miss (full mean_rssi recompute) allocates
  // nothing — the hot radio path stays off the heap entirely.
  const auto tb = home::Testbed::two_floor_house();
  PropagationCache cache{tb.plan(), tb.radio_params()};
  const Vec3 spk = tb.speaker_position(1);
  cache.mean_rssi(spk, tb.location(1).pos);
  const std::size_t n = testutil::allocations_during([&] {
    for (const auto& loc : tb.locations()) cache.mean_rssi(spk, loc.pos);
  });
  EXPECT_EQ(n, 0u);
}

TEST(SpikeClassifierAlloc, FeedingIsAllocationFree) {
  // The DFA's seen-buffer is an inline std::array; classifying a spike must
  // not touch the heap.
  const std::size_t n = testutil::allocations_during([] {
    for (int i = 0; i < 1000; ++i) {
      guard::SpikeClassifier c;
      c.feed(300);
      c.feed(77);
      c.feed(33);
      (void)c.finalize();
      guard::SpikeClassifier u;
      for (std::uint32_t len : {400u, 401u, 402u, 403u, 404u, 405u, 406u}) {
        u.feed(len);
      }
      (void)u.matched_rule();
    }
  });
  EXPECT_EQ(n, 0u);
}

}  // namespace
}  // namespace vg::radio
