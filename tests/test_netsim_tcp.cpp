#include <gtest/gtest.h>

#include "netsim/Host.h"
#include "netsim/Node.h"

namespace vg::net {
namespace {

/// Two hosts on one link — the smallest TCP world.
struct TcpWorld {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};

  TcpWorld() {
    Link& l = net.add_link(a, b, sim::milliseconds(5));
    a.attach(l);
    b.attach(l);
  }
};

TlsRecord rec(std::uint32_t len, std::uint64_t seq, std::string_view tag = "data") {
  TlsRecord r;
  r.length = len;
  r.tls_seq = seq;
  r.tag = tag;
  return r;
}

TEST(Tcp, HandshakeEstablishesBothSides) {
  TcpWorld w;
  bool server_est = false, client_est = false;
  TcpConnection* server_conn = nullptr;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    server_conn = &c;
    TcpCallbacks cbs;
    cbs.on_established = [&] { server_est = true; };
    c.set_callbacks(std::move(cbs));
  });
  TcpCallbacks cbs;
  cbs.on_established = [&] { client_est = true; };
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, std::move(cbs));
  w.sim.run_all();
  EXPECT_TRUE(client_est);
  EXPECT_TRUE(server_est);
  EXPECT_EQ(cc.state(), TcpState::kEstablished);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->state(), TcpState::kEstablished);
}

TEST(Tcp, ConnectionToClosedPortIsReset) {
  TcpWorld w;
  bool closed = false;
  TcpCloseReason reason{};
  TcpCallbacks cbs;
  cbs.on_closed = [&](TcpCloseReason r) {
    closed = true;
    reason = r;
  };
  w.a.tcp().connect(Endpoint{w.b.ip(), 9999}, std::move(cbs));
  w.sim.run_all();
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kReset);
}

TEST(Tcp, RecordsDeliveredInOrder) {
  TcpWorld w;
  std::vector<std::uint64_t> seqs;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord& r) { seqs.push_back(r.tls_seq); };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  for (std::uint64_t i = 0; i < 10; ++i) cc.send_record(rec(100, i));
  w.sim.run_all();
  ASSERT_EQ(seqs.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Tcp, WritesBeforeEstablishmentAreQueued) {
  TcpWorld w;
  std::vector<std::uint32_t> lens;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord& r) { lens.push_back(r.length); };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  cc.send_record(rec(42, 0));  // still SYN_SENT here
  EXPECT_EQ(cc.state(), TcpState::kSynSent);
  w.sim.run_all();
  ASSERT_EQ(lens.size(), 1u);
  EXPECT_EQ(lens[0], 42u);
}

TEST(Tcp, ByteCountersMatchRecordLengths) {
  TcpWorld w;
  TcpConnection* server_conn = nullptr;
  w.b.tcp().listen(443, [&](TcpConnection& c) { server_conn = &c; });
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  cc.send_record(rec(100, 0));
  cc.send_records(std::vector<TlsRecord>{rec(50, 1), rec(25, 2)});
  w.sim.run_all();
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->bytes_received(), 175u);
  EXPECT_EQ(server_conn->records_received(), 3u);
  EXPECT_EQ(cc.bytes_sent(), 175u);
}

TEST(Tcp, OrderlyCloseNotifiesBothSides) {
  TcpWorld w;
  bool server_closed = false, client_closed = false;
  TcpConnection* server_conn = nullptr;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    server_conn = &c;
    TcpCallbacks cbs;
    cbs.on_closed = [&](TcpCloseReason r) {
      server_closed = true;
      EXPECT_EQ(r, TcpCloseReason::kFin);
    };
    c.set_callbacks(std::move(cbs));
  });
  TcpCallbacks ccbs;
  ccbs.on_closed = [&](TcpCloseReason r) {
    client_closed = true;
    EXPECT_EQ(r, TcpCloseReason::kFin);
  };
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, std::move(ccbs));
  w.sim.after(sim::seconds(1), [&] { cc.close(); });
  w.sim.run_all();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST(Tcp, AbortSendsRst) {
  TcpWorld w;
  bool server_closed = false;
  TcpCloseReason server_reason{};
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_closed = [&](TcpCloseReason r) {
      server_closed = true;
      server_reason = r;
    };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  w.sim.after(sim::seconds(1), [&] { cc.abort(); });
  w.sim.run_all();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_reason, TcpCloseReason::kReset);
}

TEST(Tcp, DataAfterCloseIsDiscarded) {
  TcpWorld w;
  std::size_t received = 0;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord&) { ++received; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  w.sim.after(sim::seconds(1), [&] {
    cc.close();
    cc.send_record(rec(10, 0));  // write after FIN: dropped
  });
  w.sim.run_all();
  EXPECT_EQ(received, 0u);
}

TEST(Tcp, KeepaliveKeepsIdleConnectionAlive) {
  TcpWorld w;
  bool closed = false;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    c.set_callbacks(std::move(cbs));
  });
  TcpOptions opts;
  opts.keepalive_enabled = true;
  opts.keepalive_idle = sim::seconds(10);
  opts.keepalive_interval = sim::seconds(5);
  TcpCallbacks cbs;
  cbs.on_closed = [&](TcpCloseReason) { closed = true; };
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, std::move(cbs), opts);
  // Idle for two minutes; probes are answered, so the connection survives.
  w.sim.run_until(sim::TimePoint{} + sim::minutes(2));
  EXPECT_FALSE(closed);
  EXPECT_EQ(cc.state(), TcpState::kEstablished);
}

/// A middlebox-ish node that can blackhole traffic in one direction.
struct Blackhole : NetNode {
  Link* lan{nullptr};
  Link* wan{nullptr};
  bool drop_from_lan{false};
  void receive(Packet p, Link& from) override {
    if (&from == lan) {
      if (drop_from_lan) return;
      wan->send_from(*this, std::move(p));
    } else {
      lan->send_from(*this, std::move(p));
    }
  }
  [[nodiscard]] std::string name() const override { return "blackhole"; }
};

TEST(Tcp, RetransmitsThroughLossAndGivesUpEventually) {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Blackhole mb;
  Link& l1 = net.add_link(a, mb, sim::milliseconds(2));
  Link& l2 = net.add_link(mb, b, sim::milliseconds(2));
  a.attach(l1);
  b.attach(l2);
  mb.lan = &l1;
  mb.wan = &l2;

  std::size_t received = 0;
  b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord&) { ++received; };
    c.set_callbacks(std::move(cbs));
  });
  bool closed = false;
  TcpCloseReason reason{};
  int retransmits_at_close = 0;
  TcpCallbacks cbs;
  TcpConnection* ccp = nullptr;
  cbs.on_closed = [&](TcpCloseReason r) {
    closed = true;
    reason = r;
    retransmits_at_close = ccp->retransmit_count();
  };
  TcpConnection& cc = a.tcp().connect(Endpoint{b.ip(), 443}, std::move(cbs));
  ccp = &cc;
  sim.run_until(sim::TimePoint{} + sim::seconds(1));
  ASSERT_TRUE(cc.established());

  // Blackhole the client->server direction and send one record: the segment
  // is retransmitted with backoff until the sender gives up. (cc is freed
  // once closed, so stats are captured inside on_closed.)
  mb.drop_from_lan = true;
  cc.send_record(rec(99, 0));
  sim.run_all();
  EXPECT_EQ(received, 0u);
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kRetransmitTimeout);
  EXPECT_GE(retransmits_at_close, 5);
}

TEST(Tcp, RetransmissionRecoversFromTransientLoss) {
  sim::Simulation sim{1};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Blackhole mb;
  Link& l1 = net.add_link(a, mb, sim::milliseconds(2));
  Link& l2 = net.add_link(mb, b, sim::milliseconds(2));
  a.attach(l1);
  b.attach(l2);
  mb.lan = &l1;
  mb.wan = &l2;

  std::vector<std::uint64_t> seqs;
  b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord& r) { seqs.push_back(r.tls_seq); };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc = a.tcp().connect(Endpoint{b.ip(), 443}, TcpCallbacks{});
  sim.run_until(sim::TimePoint{} + sim::seconds(1));
  ASSERT_TRUE(cc.established());

  mb.drop_from_lan = true;
  cc.send_record(rec(99, 0));
  // Heal the path before the retransmission limit.
  sim.after(sim::milliseconds(2500), [&] { mb.drop_from_lan = false; });
  sim.run_until(sim::TimePoint{} + sim::seconds(30));
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 0u);
  EXPECT_TRUE(cc.established());
  EXPECT_GE(cc.retransmit_count(), 1);
}

TEST(Tcp, TransparentListenAcceptsAnyDestination) {
  TcpWorld w;
  Endpoint seen_local;
  w.b.tcp().listen_transparent([&](TcpConnection& c) {
    seen_local = c.local();
  });
  // Client connects to an IP that is NOT b's, but b sits at the end of the
  // wire and transparently accepts. (Routing quirk of the two-node world:
  // b receives everything on the link.)
  sim::Simulation& sim = w.sim;
  (void)sim;
  // Host::receive filters dst!=own ip, so target b's IP but a foreign port.
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 12345}, TcpCallbacks{});
  w.sim.run_all();
  EXPECT_EQ(cc.state(), TcpState::kEstablished);
  EXPECT_EQ(seen_local.port, 12345);
}

TEST(Tcp, ConnectFromUsesSpoofedSource) {
  TcpWorld w;
  Endpoint seen_remote;
  w.b.tcp().listen(443, [&](TcpConnection& c) { seen_remote = c.remote(); });
  const Endpoint spoofed{IpAddress(10, 0, 0, 1), 55555};
  w.a.tcp().connect_from(spoofed, Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  w.sim.run_all();
  EXPECT_EQ(seen_remote, spoofed);
}

TEST(Tcp, DuplicateConnectFromThrows) {
  TcpWorld w;
  w.b.tcp().listen(443, [](TcpConnection&) {});
  const Endpoint local{IpAddress(10, 0, 0, 1), 55555};
  w.a.tcp().connect_from(local, Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  EXPECT_THROW(
      w.a.tcp().connect_from(local, Endpoint{w.b.ip(), 443}, TcpCallbacks{}),
      std::logic_error);
}

TEST(Tcp, ConnectionsRemovedAfterClose) {
  TcpWorld w;
  w.b.tcp().listen(443, [](TcpConnection&) {});
  TcpConnection& cc =
      w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  w.sim.run_until(sim::TimePoint{} + sim::seconds(1));
  EXPECT_EQ(w.a.tcp().connection_count(), 1u);
  cc.close();
  w.sim.run_all();
  EXPECT_EQ(w.a.tcp().connection_count(), 0u);
  EXPECT_EQ(w.b.tcp().connection_count(), 0u);
}

}  // namespace
}  // namespace vg::net
