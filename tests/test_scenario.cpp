/// Unit tests for the `.scn` scenario stack: the lexical ScnParser, the
/// validate-before-install ScenarioLoader (every rejection must name the
/// offending section, key and line), and the canonical serializer whose
/// output the loader parses back into an equal spec.

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "scenario/Generator.h"
#include "scenario/Scenario.h"
#include "scenario/ScenarioLoader.h"
#include "scenario/ScnParser.h"
#include "scenario/Serialize.h"

namespace vg::scenario {
namespace {

// ---------------------------------------------------------------------------
// ScnParser: the lexical layer.

TEST(ScnParser, SplitsSectionsKeysAndLineNumbers) {
  const auto entries = parse_scn(
      "# leading comment\n"
      "[scenario]\n"
      "name = base\n"
      "\n"
      "[schedule]\n"
      "command = 10 legit   # inline comment\n"
      "command = 40 attack\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].section, "scenario");
  EXPECT_EQ(entries[0].key, "name");
  EXPECT_EQ(entries[0].value, "base");
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[1].section, "schedule");
  EXPECT_EQ(entries[1].key, "command");
  EXPECT_EQ(entries[1].value, "10 legit");
  EXPECT_EQ(entries[1].line, 6);
  EXPECT_EQ(entries[2].value, "40 attack");
  EXPECT_EQ(entries[2].line, 7);
}

TEST(ScnParser, TokensSplitOnWhitespace) {
  const auto toks = scn_tokens("  lan \t flap  60 3 ");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "lan");
  EXPECT_EQ(toks[3], "3");
}

void expect_parse_error(const std::string& text, int line,
                        const std::string& substr) {
  try {
    parse_scn(text);
    FAIL() << "expected ScnError for: " << text;
  } catch (const ScnError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string{e.what()}.find(substr), std::string::npos)
        << "missing \"" << substr << "\" in: " << e.what();
    EXPECT_EQ(std::string{e.what()}.rfind("line " + std::to_string(line), 0),
              0u)
        << "what() must start with the line number: " << e.what();
  }
}

TEST(ScnParser, LexicalErrorsNameTheLine) {
  expect_parse_error("a = 1\n", 1, "appears before any [section] header");
  expect_parse_error("[scenario\n", 1, "malformed section header");
  expect_parse_error("[]\n", 1, "malformed section header '[]'");
  expect_parse_error("[ ]\n", 1, "empty section name");
  expect_parse_error("[scenario]\nname = ok\ngarbage\n", 3,
                     "expected 'key = value', got 'garbage'");
  expect_parse_error("[scenario]\n= 5\n", 2, "empty key");
}

// ---------------------------------------------------------------------------
// ScenarioLoader: happy paths.

constexpr const char* kScripted = R"([scenario]
name = base
kind = home
seed = 7
speaker = echo_dot

[home]
testbed = apartment
deployment = 2
owners = 3
watch = on
motion_sensor = off

[guard]
mode = monitor
fail_policy = fail-open
verdict_timeout_s = 5
hold_queue_cap = 64
fcm_max_retries = 2
fcm_retry_initial_s = 1.5

[schedule]
command = 10 legit
command = 40 attack
drain_s = 215

[faults]
link = lan flap 60 3
link = wan burst 20 12 loss_bad=0.8
link = wan latency 100 30 extra_ms=250
cloud = 150 10 norst
fcm = 30 60 delay_s=2 drop=0.5
device = 1 80 0
restart = 170
may_break_connections = on
)";

TEST(ScenarioLoader, LoadsAFullScriptedHome) {
  const ScenarioSpec spec = ScenarioLoader::load(kScripted);
  EXPECT_EQ(spec.name, "base");
  EXPECT_EQ(spec.kind, Kind::kHome);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.speaker, Speaker::kEchoDot);
  EXPECT_TRUE(spec.scripted());

  EXPECT_EQ(spec.home.testbed, Testbed::kApartment);
  EXPECT_EQ(spec.home.deployment, 2);
  EXPECT_EQ(spec.home.owners, 3);
  EXPECT_TRUE(spec.home.watch);
  EXPECT_FALSE(spec.home.motion_sensor);

  EXPECT_EQ(spec.guard.mode, guard::GuardMode::kMonitor);
  EXPECT_EQ(spec.guard.fail_policy, guard::FailPolicy::kFailOpen);
  EXPECT_EQ(spec.guard.verdict_timeout, sim::seconds(5));
  EXPECT_EQ(spec.guard.hold_queue_cap, 64);
  EXPECT_EQ(spec.guard.fcm_max_retries, 2);
  EXPECT_EQ(spec.guard.fcm_retry_initial, sim::from_seconds(1.5));

  ASSERT_EQ(spec.schedule.commands.size(), 2u);
  EXPECT_EQ(spec.schedule.commands[0].at, sim::seconds(10));
  EXPECT_FALSE(spec.schedule.commands[0].attack);
  EXPECT_EQ(spec.schedule.commands[1].at, sim::seconds(40));
  EXPECT_TRUE(spec.schedule.commands[1].attack);
  EXPECT_EQ(spec.schedule.drain, sim::seconds(215));

  // The plan inherits the scenario name (the chaos label convention).
  EXPECT_EQ(spec.faults.name, "base");
  EXPECT_TRUE(spec.faults.may_break_connections);
  ASSERT_EQ(spec.faults.links.size(), 3u);
  EXPECT_EQ(spec.faults.links[0].where, faults::LinkFault::Where::kLan);
  EXPECT_EQ(spec.faults.links[0].kind, faults::LinkFault::Kind::kFlap);
  EXPECT_EQ(spec.faults.links[0].start, sim::seconds(60));
  EXPECT_EQ(spec.faults.links[0].duration, sim::seconds(3));
  EXPECT_EQ(spec.faults.links[1].kind, faults::LinkFault::Kind::kBurst);
  EXPECT_DOUBLE_EQ(spec.faults.links[1].ge.loss_bad, 0.8);
  EXPECT_EQ(spec.faults.links[2].kind,
            faults::LinkFault::Kind::kLatencySpike);
  EXPECT_EQ(spec.faults.links[2].extra_latency, sim::milliseconds(250));
  ASSERT_EQ(spec.faults.cloud.size(), 1u);
  EXPECT_FALSE(spec.faults.cloud[0].rst_existing);
  ASSERT_EQ(spec.faults.fcm.size(), 1u);
  EXPECT_EQ(spec.faults.fcm[0].extra_delay, sim::seconds(2));
  EXPECT_DOUBLE_EQ(spec.faults.fcm[0].drop_prob, 0.5);
  ASSERT_EQ(spec.faults.devices.size(), 1u);
  EXPECT_EQ(spec.faults.devices[0].device, 1);
  EXPECT_EQ(spec.faults.devices[0].duration, sim::Duration{});  // forever
  ASSERT_EQ(spec.faults.restarts.size(), 1u);
  EXPECT_EQ(spec.faults.restarts[0].at, sim::seconds(170));
}

TEST(ScenarioLoader, LoadsACaptureLoopWithDefaults) {
  const ScenarioSpec spec = ScenarioLoader::load(
      "[scenario]\n"
      "name = cap\n"
      "kind = home\n"
      "[schedule]\n"
      "commands = 8\n");
  EXPECT_FALSE(spec.scripted());
  EXPECT_EQ(spec.schedule.loop_commands, 8);
  // Untouched knobs keep the WorldConfig-mirroring defaults.
  EXPECT_EQ(spec.schedule.boot, sim::seconds(10));
  EXPECT_DOUBLE_EQ(spec.schedule.gap_base_s, 24.0);
  EXPECT_DOUBLE_EQ(spec.schedule.gap_jitter_s, 8.0);
  EXPECT_EQ(spec.schedule.tail, sim::seconds(8));
  EXPECT_EQ(spec.home.owners, 2);
  EXPECT_EQ(spec.faults.name, "cap");
  EXPECT_TRUE(spec.faults.empty());
}

TEST(ScenarioLoader, LoadsAChainWithSpeakerOptions) {
  const ScenarioSpec echo = ScenarioLoader::load(
      "[scenario]\n"
      "name = chain-echo\n"
      "kind = chain\n"
      "speaker = echo_dot\n"
      "[schedule]\n"
      "commands = 12\n"
      "gap_base_s = 20\n"
      "gap_jitter_s = 10\n"
      "[chain]\n"
      "avs_migration_s = 90\n"
      "misc_connection_s = 120\n");
  EXPECT_EQ(echo.kind, Kind::kChain);
  EXPECT_EQ(echo.chain.avs_migration_mean, sim::seconds(90));
  ASSERT_TRUE(echo.chain.misc_connection_mean.has_value());
  EXPECT_EQ(*echo.chain.misc_connection_mean, sim::seconds(120));
  EXPECT_FALSE(echo.chain.quic_probability.has_value());

  const ScenarioSpec ghm = ScenarioLoader::load(
      "[scenario]\n"
      "name = chain-ghm\n"
      "kind = chain\n"
      "speaker = home_mini\n"
      "[schedule]\n"
      "commands = 10\n"
      "[chain]\n"
      "quic_probability = 1\n");
  ASSERT_TRUE(ghm.chain.quic_probability.has_value());
  EXPECT_DOUBLE_EQ(*ghm.chain.quic_probability, 1.0);
}

TEST(ScenarioLoader, LoadsASyntheticCaptureWithGroundTruth) {
  const ScenarioSpec spec = ScenarioLoader::load(
      "[scenario]\n"
      "name = synth\n"
      "kind = synthetic\n"
      "[capture]\n"
      "dns = avs 10.0.0.1 1000\n"
      "flow = tcp 50001 10.0.0.1 443 1100\n"
      "signature = 0 1110\n"
      "tls = 0 down 1200 1300\n"
      "spike = 0 5000 500 75\n"
      "flow = udp 40000 10.0.0.9 443 6000\n"
      "datagram = 1 up 1350 6010\n"
      "expect = 1 tcp 5000 command p-75 500 75\n");
  ASSERT_EQ(spec.capture.size(), 7u);
  EXPECT_EQ(spec.capture[0].kind, CaptureOp::Kind::kDns);
  EXPECT_EQ(spec.capture[1].kind, CaptureOp::Kind::kFlow);
  EXPECT_EQ(spec.capture[1].sport, 50001);
  EXPECT_EQ(spec.capture[3].kind, CaptureOp::Kind::kTls);
  EXPECT_FALSE(spec.capture[3].upstream);
  EXPECT_EQ(spec.capture[3].len, 1200u);
  ASSERT_EQ(spec.capture[4].lens.size(), 2u);
  EXPECT_EQ(spec.capture[4].lens[1], 75u);
  ASSERT_EQ(spec.expected.size(), 1u);
  EXPECT_EQ(spec.expected[0].flow_id, 1u);
  EXPECT_FALSE(spec.expected[0].udp);
  ASSERT_EQ(spec.expected[0].prefix.size(), 2u);
}

// ---------------------------------------------------------------------------
// ScenarioLoader: every rejection names the offending key and line, and
// nothing half-decoded escapes (load either returns or throws).

void expect_load_error(const std::string& text, int line,
                       const std::string& substr) {
  try {
    ScenarioLoader::load(text);
    FAIL() << "expected ScnError containing \"" << substr << "\"";
  } catch (const ScnError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string{e.what()}.find(substr), std::string::npos)
        << "missing \"" << substr << "\" in: " << e.what();
  }
}

TEST(ScenarioLoader, RejectsMissingOrBadName) {
  expect_load_error("", 1, "[scenario] name: missing");
  expect_load_error("[scenario]\nkind = home\n", 1,
                    "name: missing (every scenario is named)");
  expect_load_error("[scenario]\nname = not/ok\n", 2,
                    "name may only use [A-Za-z0-9._-]");
}

TEST(ScenarioLoader, RejectsUnknownSectionsKeysAndKinds) {
  expect_load_error("[scenario]\nname = x\n[bogus]\na = 1\n", 4,
                    "unknown section [bogus]");
  expect_load_error("[scenario]\nname = x\ncolor = red\n", 3,
                    "unknown key in [scenario]");
  expect_load_error("[scenario]\nname = x\nkind = castle\n", 3,
                    "unknown kind (expected home, chain or synthetic)");
  expect_load_error("[scenario]\nname = x\nspeaker = homepod\n", 3,
                    "unknown speaker (expected echo_dot or home_mini)");
}

TEST(ScenarioLoader, RejectsDuplicateKeysNamingTheFirstLine) {
  expect_load_error(
      "[scenario]\nname = x\n[home]\nowners = 2\nowners = 3\n", 5,
      "duplicate key (already set at line 4)");
}

TEST(ScenarioLoader, RejectsBadScalarTypesAndRanges) {
  const std::string head = "[scenario]\nname = x\n[home]\n";
  expect_load_error(head + "owners = three\n", 4,
                    "'three' is not an unsigned integer");
  expect_load_error(head + "owners = 9\n", 4, "owners must be in [1, 8]");
  expect_load_error(head + "deployment = 3\n", 4, "deployment must be 1 or 2");
  expect_load_error(head + "watch = maybe\n", 4,
                    "'maybe' is not a boolean (on/off/true/false)");
  expect_load_error(head + "testbed = lab\n", 4,
                    "unknown testbed (expected house, apartment or office)");
  expect_load_error(head + "owners = 2 3\n", 4, "expected a single value");

  const std::string guard = "[scenario]\nname = x\n[guard]\n";
  expect_load_error(guard + "mode = paranoid\n", 4,
                    "unknown mode (expected voiceguard, naive or monitor)");
  expect_load_error(guard + "fail_policy = shrug\n", 4,
                    "unknown policy (expected fail-closed or fail-open)");
  expect_load_error(guard + "hold_queue_cap = 100001\n", 4,
                    "hold_queue_cap must be <= 100000");
  expect_load_error(guard + "fcm_max_retries = 17\n", 4,
                    "fcm_max_retries must be <= 16");
  expect_load_error(guard + "fcm_retry_initial_s = 0\n", 4,
                    "fcm_retry_initial_s must be > 0");
  expect_load_error(guard + "verdict_timeout_s = -1\n", 4,
                    "must be >= 0, got '-1'");
}

TEST(ScenarioLoader, RejectsBrokenSchedules) {
  const std::string head = "[scenario]\nname = x\n[schedule]\n";
  expect_load_error(head + "command = 10\n", 4,
                    "expected '<at_s> <legit|attack>'");
  expect_load_error(head + "command = 10 sneaky\n", 4,
                    "expected legit or attack, got 'sneaky'");
  expect_load_error(head + "command = 1 legit\n", 4,
                    "command offsets must be >= 2 s");
  expect_load_error(head + "command = 10 legit\ncommand = 10 attack\n", 5,
                    "command offsets must be strictly increasing");
  expect_load_error(head + "command = 10 legit\ndrain_s = 39\n", 5,
                    "drain_s must be at least 30 s past the last command");
  expect_load_error(head + "commands = 0\n", 4, "commands must be in [1, 64]");
  expect_load_error(head + "commands = 65\n", 4,
                    "commands must be in [1, 64]");
  expect_load_error(head + "commands = 4\ngap_base_s = 3\n", 5,
                    "gap_base_s must be >= 4 (the recognizer's idle gap is 3 s)");
  expect_load_error(head + "commands = 4\ngap_jitter_s = -1\n", 5,
                    "gap_jitter_s must be >= 0");
  // Scripted commands and the capture loop are mutually exclusive; neither
  // present is just as fatal.
  expect_load_error(head + "command = 10 legit\ncommands = 4\n", 5,
                    "mutually exclusive");
  expect_load_error("[scenario]\nname = x\nkind = home\n", 3,
                    "kind home needs either scripted 'command' lines or a "
                    "capture loop");
}

TEST(ScenarioLoader, RejectsSectionsForeignToTheKind) {
  expect_load_error(
      "[scenario]\nname = x\n[schedule]\ncommands = 4\n[chain]\n"
      "avs_migration_s = 90\n",
      6, "[chain] is not allowed for kind home");
  expect_load_error(
      "[scenario]\nname = x\n[schedule]\ncommands = 4\n[guard]\nmode = naive\n",
      6, "[guard] is not allowed for capture-loop scenarios");
  expect_load_error(
      "[scenario]\nname = x\n[schedule]\ncommands = 4\n[faults]\nrestart = 9\n",
      6, "[faults] is not allowed for capture-loop scenarios");
  expect_load_error(
      "[scenario]\nname = x\nkind = chain\n[schedule]\ncommands = 4\n"
      "[home]\nowners = 1\n",
      7, "[home] is not allowed for kind chain");
  expect_load_error(
      "[scenario]\nname = x\nkind = chain\n[schedule]\n"
      "command = 10 legit\n",
      5, "kind chain uses a capture loop, not scripted commands");
  expect_load_error("[scenario]\nname = x\nkind = chain\n", 3,
                    "kind chain needs 'commands = N'");
  expect_load_error(
      "[scenario]\nname = x\nkind = synthetic\n[capture]\n"
      "dns = avs 10.0.0.1 0\n[schedule]\ncommands = 4\n",
      7, "[schedule] is not allowed for kind synthetic");
}

TEST(ScenarioLoader, RejectsChainOptionsOnTheWrongSpeaker) {
  expect_load_error(
      "[scenario]\nname = x\nkind = chain\nspeaker = home_mini\n"
      "[schedule]\ncommands = 4\n[chain]\nmisc_connection_s = 120\n",
      8, "misc_connection_s only applies to speaker echo_dot");
  expect_load_error(
      "[scenario]\nname = x\nkind = chain\nspeaker = echo_dot\n"
      "[schedule]\ncommands = 4\n[chain]\nquic_probability = 0.5\n",
      8, "quic_probability only applies to speaker home_mini");
}

// ---------------------------------------------------------------------------
// [population]: scripted homes only, homes mandatory, bounded knobs.

TEST(ScenarioLoader, LoadsAPopulationSection) {
  const ScenarioSpec spec = ScenarioLoader::load(
      std::string{kScripted} +
      "\n[population]\nhomes = 12\ncommand_jitter_s = 1.5\n"
      "attack_flip = 0.25\n");
  EXPECT_TRUE(spec.population.enabled());
  EXPECT_EQ(spec.population.homes, 12u);
  EXPECT_DOUBLE_EQ(spec.population.command_jitter_s, 1.5);
  EXPECT_DOUBLE_EQ(spec.population.attack_flip, 0.25);
  EXPECT_NE(spec.summary().find("population of 12 homes"), std::string::npos)
      << spec.summary();
}

TEST(ScenarioLoader, PopulationDefaultsToJitterlessSingleFlipFree) {
  const ScenarioSpec spec = ScenarioLoader::load(std::string{kScripted} +
                                                 "\n[population]\nhomes = 2\n");
  EXPECT_EQ(spec.population.homes, 2u);
  EXPECT_DOUBLE_EQ(spec.population.command_jitter_s, 0.0);
  EXPECT_DOUBLE_EQ(spec.population.attack_flip, 0.0);
}

TEST(ScenarioLoader, RejectsBrokenPopulations) {
  const std::string head = "[scenario]\nname = x\n[schedule]\n"
                           "command = 10 legit\n[population]\n";
  expect_load_error(head + "homes = 0\n", 6, "homes must be in [1, 1000000]");
  expect_load_error(head + "homes = 1000001\n", 6,
                    "homes must be in [1, 1000000]");
  expect_load_error(head + "homes = 2\ncommand_jitter_s = 11\n", 7,
                    "command_jitter_s must be in [0, 10]");
  expect_load_error(head + "homes = 2\nattack_flip = 1.5\n", 7,
                    "attack_flip must be in [0, 1]");
  expect_load_error(head + "homes = 2\nrooms = 4\n", 7,
                    "unknown key in [population]");
  expect_load_error(head + "command_jitter_s = 1\n", 6,
                    "[population] needs 'homes = N'");
}

TEST(ScenarioLoader, RejectsPopulationsOutsideScriptedHomes) {
  expect_load_error(
      "[scenario]\nname = x\n[schedule]\ncommands = 4\n[population]\n"
      "homes = 3\n",
      6, "[population] is not allowed for capture-loop scenarios");
  expect_load_error(
      "[scenario]\nname = x\nkind = chain\n[schedule]\ncommands = 4\n"
      "[population]\nhomes = 3\n",
      7, "[population] is not allowed for kind chain");
  expect_load_error(
      "[scenario]\nname = x\nkind = synthetic\n[capture]\n"
      "dns = avs 10.0.0.1 0\n[population]\nhomes = 3\n",
      7, "[population] is not allowed for kind synthetic");
}

TEST(ScnSerializer, RoundTripsThePopulationSection) {
  ScenarioSpec spec = ScenarioLoader::load(std::string{kScripted} +
                                           "\n[population]\nhomes = 40000\n"
                                           "command_jitter_s = 2.5\n"
                                           "attack_flip = 0.1\n");
  const std::string text = write_scn(spec);
  EXPECT_NE(text.find("[population]"), std::string::npos) << text;
  const ScenarioSpec reparsed = ScenarioLoader::load(text);
  EXPECT_TRUE(reparsed == spec) << text;
  EXPECT_EQ(write_scn(reparsed), text);

  // A population-free spec must not grow the section (canonical emission).
  spec.population = {};
  EXPECT_EQ(write_scn(spec).find("[population]"), std::string::npos);
}

TEST(ScenarioLoader, RejectsBrokenFaultLines) {
  const std::string head =
      "[scenario]\nname = x\n[schedule]\ncommand = 10 legit\n[faults]\n";
  expect_load_error(head + "link = wifi flap 0 1\n", 6,
                    "unknown link target 'wifi' (expected lan or wan)");
  expect_load_error(head + "link = lan melt 0 1\n", 6,
                    "unknown link fault kind 'melt'");
  expect_load_error(head + "link = lan flap 0 1 extra_ms=10\n", 6,
                    "extra_ms only applies to latency faults");
  expect_load_error(head + "link = lan burst 0 1 bananas=1\n", 6,
                    "unknown or misplaced argument 'bananas'");
  expect_load_error(head + "link = lan flap -5 1\n", 6,
                    "must be >= 0, got '-5'");
  expect_load_error(head + "cloud = 0 5 maybe\n", 6,
                    "expected rst or norst, got 'maybe'");
  expect_load_error(head + "fcm = 0 5 drop=1.5\n", 6, "must be in [0, 1]");
  expect_load_error(head + "device = 0 10 5\ndevice = 0 12 5\n", 7,
                    "device-fault window starting at 12");
  expect_load_error(head + "device = 5 10 5\n", 6,
                    "device index 5 out of range (2 owner devices)");
  expect_load_error(head + "restart = 30\nrestart = 30\n", 7,
                    "duplicate guard restart instant");
}

TEST(ScenarioLoader, RejectsOverlappingFaultWindows) {
  const std::string head =
      "[scenario]\nname = x\n[schedule]\ncommand = 10 legit\n[faults]\n";
  // Same link, same kind: the second window lands inside the first.
  expect_load_error(head + "link = lan flap 60 30\nlink = lan flap 65 2\n", 7,
                    "link-fault window starting at 65");
  expect_load_error(head + "cloud = 10 20 rst\ncloud = 25 5 rst\n", 7,
                    "cloud-outage window starting at 25");
  expect_load_error(head + "fcm = 10 20\nfcm = 15 1\n", 7,
                    "fcm-fault window starting at 15");
  // duration 0 = forever: an open-ended device fault blocks anything later.
  expect_load_error(head + "device = 0 10 0\ndevice = 0 500 5\n", 7,
                    "device-fault window starting at 500");

  // Disjoint windows, different kinds and different links never collide.
  const ScenarioSpec ok = ScenarioLoader::load(
      head + "link = lan flap 60 3\nlink = lan flap 70 3\n"
             "link = wan flap 60 3\nlink = lan burst 60 3\n"
             "device = 0 10 5\ndevice = 1 10 5\n");
  EXPECT_EQ(ok.faults.links.size(), 4u);
}

TEST(ScenarioLoader, RejectsBrokenCaptureTimelines) {
  const std::string head = "[scenario]\nname = x\nkind = synthetic\n[capture]\n";
  expect_load_error(head + "tls = 0 up 500 100\n", 5,
                    "flow 0 is not defined yet (0 flow ops so far)");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 100\nspike = 1 200 500\n", 6,
      "flow 1 is not defined yet (1 flow ops so far)");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 100\ntls = 0 up 500 50\n", 6,
      "at_ms 50 runs backwards");
  expect_load_error(head + "dns = avs 10.0.0.1 -1\n", 5, "at_ms must be >= 0");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 0\ntls = 0 up 0 10\n", 6,
      "record length must be in [1, 1048576]");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 0\nspike = 0 10 500 0\n", 6,
      "record length must be in [1, 1048576]");
  expect_load_error(head + "dns = avs 999.0.0.1 0\n", 5,
                    "'999.0.0.1' is not a dotted-quad IPv4 address");
  expect_load_error(head + "flow = sctp 1 10.0.0.1 443 0\n", 5,
                    "unknown protocol 'sctp' (expected tcp or udp)");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 0\n"
             "expect = 0 tcp 0 command none 500\n",
      6, "flow_id is 1-based, got 0");
  expect_load_error(
      head + "flow = tcp 50001 10.0.0.1 443 0\n"
             "expect = 2 tcp 0 command none 500\n",
      3, "flow_id 2 exceeds the 1 declared flows");
  expect_load_error("[scenario]\nname = x\nkind = synthetic\n", 3,
                    "kind synthetic needs at least one capture op");
}

// ---------------------------------------------------------------------------
// Serializer: canonical emission the loader parses back into an equal spec.

TEST(ScnSerializer, RoundTripsTheFullScriptedSpec) {
  const ScenarioSpec spec = ScenarioLoader::load(kScripted);
  const std::string text = write_scn(spec);
  const ScenarioSpec reparsed = ScenarioLoader::load(text);
  EXPECT_TRUE(reparsed == spec) << text;
  // Canonical form is a fixed point: serializing again changes nothing.
  EXPECT_EQ(write_scn(reparsed), text);
}

TEST(ScnSerializer, RoundTripsGeneratedSpecsOfEveryShape) {
  bool saw[4] = {false, false, false, false};
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ScenarioSpec spec = Generator::generate(seed);
    saw[spec.scripted() ? 0 : static_cast<int>(spec.kind) + 1] = true;
    const ScenarioSpec reparsed = ScenarioLoader::load(write_scn(spec));
    EXPECT_TRUE(reparsed == spec) << "seed " << seed << ":\n"
                                  << write_scn(spec);
  }
  for (const bool s : saw) EXPECT_TRUE(s);
}

TEST(ScnSerializer, PathologicalDurationsSurviveViaTheNsFallback) {
  // from_seconds truncates, so an awkward nanosecond count may have no
  // decimal-seconds literal; the serializer must still round-trip it.
  ScenarioSpec spec = ScenarioLoader::load(kScripted);
  spec.guard.verdict_timeout = sim::Duration{1};
  spec.schedule.commands[1].at = sim::Duration{39'999'999'999};
  spec.faults.links[0].start = sim::Duration{59'000'000'001};
  const ScenarioSpec reparsed = ScenarioLoader::load(write_scn(spec));
  EXPECT_TRUE(reparsed == spec) << write_scn(spec);
}

// ---------------------------------------------------------------------------
// load_file: I/O failures name the path; ScnErrors get the path prefixed.

TEST(ScenarioLoaderFile, PrefixesThePathOnEveryDiagnostic) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/good.scn";
  const std::string bad = dir + "/bad.scn";
  save_scn(ScenarioLoader::load(kScripted), good);
  EXPECT_TRUE(ScenarioLoader::load_file(good) ==
              ScenarioLoader::load(kScripted));

  std::ofstream{bad} << "[scenario]\nname = not/ok\n";
  try {
    ScenarioLoader::load_file(bad);
    FAIL() << "expected ScnError";
  } catch (const ScnError& e) {
    EXPECT_EQ(e.line(), 2);
    const std::string what = e.what();
    EXPECT_EQ(what.rfind(bad + ": line 2: ", 0), 0u) << what;
  }

  try {
    ScenarioLoader::load_file(dir + "/missing.scn");
    FAIL() << "expected runtime_error";
  } catch (const ScnError&) {
    FAIL() << "I/O failures are not parse errors";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("missing.scn"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("cannot open scenario file"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace vg::scenario
