/// Golden-trace regression: the shipped corpus under tests/data/ must
/// (a) re-record byte-identically from its scenario + seed, and (b) replay
/// to exactly the spikes the live guard recognized at capture time (flow,
/// transport, start time, prefix, class, matched rule). Any recognizer or
/// format change that shifts observable behaviour fails here first.
///
/// Regeneration policy (see EXPERIMENTS.md): when a change is *supposed* to
/// alter captures, regenerate with `vgtrace record <scenario> tests/data/...`
/// and commit the new .vgt files together with the change.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/Replayer.h"
#include "trace/TraceReader.h"
#include "workload/TraceScenarios.h"

using namespace vg;

namespace {

std::string data_path(const std::string& scenario) {
  return std::string{VG_TRACE_DATA_DIR} + "/" + scenario + ".vgt";
}

class GoldenTrace : public ::testing::TestWithParam<workload::TraceScenario> {};

TEST_P(GoldenTrace, RecaptureIsByteIdentical) {
  const workload::TraceScenario& sc = GetParam();
  const std::vector<std::uint8_t> golden =
      trace::read_file(data_path(sc.name));
  const workload::TraceScenarioResult rerun =
      workload::run_trace_scenario(sc.name, sc.default_seed);
  ASSERT_EQ(rerun.bytes.size(), golden.size())
      << sc.name << " capture changed size; if intentional, regenerate "
      << "tests/data/ (see EXPERIMENTS.md)";
  EXPECT_TRUE(rerun.bytes == golden)
      << sc.name << " capture is no longer byte-identical; if intentional, "
      << "regenerate tests/data/ (see EXPERIMENTS.md)";
}

TEST_P(GoldenTrace, ReplayMatchesLiveRecognition) {
  const workload::TraceScenario& sc = GetParam();
  const trace::TraceReader t = trace::TraceReader::load(data_path(sc.name));
  EXPECT_EQ(t.meta().scenario, sc.name);
  EXPECT_EQ(t.meta().seed, sc.default_seed);

  const trace::ReplayResult res = trace::Replayer{}.run(t);
  const workload::TraceScenarioResult live =
      workload::run_trace_scenario(sc.name, sc.default_seed);

  if (live.synthetic) {
    // Hand-derived ground truth: checks the Replayer itself.
    ASSERT_EQ(res.spikes.size(), live.expected_spikes.size());
    for (std::size_t i = 0; i < res.spikes.size(); ++i) {
      const trace::ReplaySpike& got = res.spikes[i];
      const trace::ReplaySpike& want = live.expected_spikes[i];
      EXPECT_EQ(got.flow_id, want.flow_id) << "spike " << i;
      EXPECT_EQ(got.udp, want.udp) << "spike " << i;
      EXPECT_EQ(got.start, want.start) << "spike " << i;
      EXPECT_EQ(got.prefix, want.prefix) << "spike " << i;
      EXPECT_EQ(got.cls, want.cls) << "spike " << i;
      EXPECT_EQ(got.rule, want.rule) << "spike " << i;
    }
    return;
  }

  // Live ground truth: replay must reproduce the capture-time recognition
  // verdict for verdict.
  ASSERT_EQ(res.spikes.size(), live.live_spikes.size()) << sc.name;
  for (std::size_t i = 0; i < res.spikes.size(); ++i) {
    const trace::ReplaySpike& got = res.spikes[i];
    const guard::SpikeEvent& want = live.live_spikes[i];
    EXPECT_EQ(got.flow_id, want.flow_id) << sc.name << " spike " << i;
    EXPECT_EQ(got.udp, want.udp) << sc.name << " spike " << i;
    EXPECT_EQ(got.start, want.start) << sc.name << " spike " << i;
    EXPECT_EQ(got.prefix, want.prefix) << sc.name << " spike " << i;
    EXPECT_EQ(got.cls, want.cls) << sc.name << " spike " << i;
    EXPECT_EQ(got.rule, want.rule) << sc.name << " spike " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenTrace, ::testing::ValuesIn(workload::trace_scenarios()),
    [](const ::testing::TestParamInfo<workload::TraceScenario>& info) {
      return info.param.name;
    });

}  // namespace
