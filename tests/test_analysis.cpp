#include <gtest/gtest.h>

#include "analysis/Stats.h"

namespace vg::analysis {
namespace {

TEST(Stats, Summary) {
  const auto s = summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const auto s = summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Stats, CdfAt) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 10), 1.0);
}

TEST(Regression, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i * 0.2);
    ys.push_back(-1.3 * i * 0.2 + 5.0);
  }
  const auto f = linear_regression(xs, ys);
  EXPECT_NEAR(f.slope, -1.3, 1e-9);
  EXPECT_NEAR(f.intercept, 5.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Regression, UniformSpacingHelper) {
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) ys.push_back(2.0 * i * 0.2 - 7.0);
  const auto f = linear_regression_uniform(ys, 0.2);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, -7.0, 1e-9);
}

TEST(Regression, RejectsDegenerateInput) {
  EXPECT_THROW(linear_regression({1}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1, 1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Regression, NoisyFitHasLowerR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(i + ((i % 2 == 0) ? 3.0 : -3.0));
  }
  const auto f = linear_regression(xs, ys);
  EXPECT_LT(f.r2, 1.0);
  EXPECT_NEAR(f.slope, 1.0, 0.2);
}

TEST(Confusion, PaperExampleTable2EchoLoc1) {
  // "Echo Dot at the 1st location" in Table II: 69/69 malicious blocked,
  // 89/91 legitimate passed.
  ConfusionMatrix m;
  m.tp = 69;
  m.fn = 0;
  m.tn = 89;
  m.fp = 2;
  EXPECT_NEAR(m.accuracy(), 0.9875, 1e-4);
  EXPECT_NEAR(m.precision(), 0.9718, 1e-4);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_EQ(m.total(), 160u);
}

TEST(Confusion, EmptyDenominatorsAreZero) {
  ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
}

TEST(Confusion, ToStringContainsMetrics) {
  ConfusionMatrix m;
  m.tp = 1;
  m.tn = 1;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("acc=100.00%"), std::string::npos);
}

TEST(Pct, Formats) {
  EXPECT_EQ(pct(0.9729), "97.29%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace vg::analysis
