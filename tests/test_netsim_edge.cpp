/// Edge cases of the network substrate: teardown races, keep-alive death,
/// out-of-order reassembly, DNS corner cases.

#include <gtest/gtest.h>

#include "netsim/Dns.h"
#include "netsim/Host.h"
#include "netsim/MiddleBox.h"

namespace vg::net {
namespace {

struct TcpWorld {
  sim::Simulation sim{2};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};

  TcpWorld() {
    Link& l = net.add_link(a, b, sim::milliseconds(5));
    a.attach(l);
    b.attach(l);
  }
};

TlsRecord rec(std::uint32_t len, std::uint64_t seq) {
  TlsRecord r;
  r.length = len;
  r.tls_seq = seq;
  return r;
}

TEST(TcpEdge, SimultaneousCloseResolves) {
  TcpWorld w;
  TcpConnection* server = nullptr;
  int closed = 0;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    server = &c;
    TcpCallbacks cbs;
    cbs.on_closed = [&](TcpCloseReason) { ++closed; };
    c.set_callbacks(std::move(cbs));
  });
  TcpCallbacks ccbs;
  ccbs.on_closed = [&](TcpCloseReason) { ++closed; };
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, std::move(ccbs));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(1));
  ASSERT_NE(server, nullptr);
  // Both sides close in the same instant: FINs cross on the wire.
  cc.close();
  server->close();
  w.sim.run_all();
  EXPECT_EQ(closed, 2);
  EXPECT_EQ(w.a.tcp().connection_count(), 0u);
  EXPECT_EQ(w.b.tcp().connection_count(), 0u);
}

TEST(TcpEdge, DataQueuedBeforeConnectSurvivesHandshake) {
  TcpWorld w;
  std::uint64_t bytes = 0;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_record = [&](const TlsRecord& r) { bytes += r.length; };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  // Multiple writes while still SYN_SENT.
  for (int i = 0; i < 5; ++i) cc.send_record(rec(10, static_cast<std::uint64_t>(i)));
  w.sim.run_all();
  EXPECT_EQ(bytes, 50u);
}

TEST(TcpEdge, EstablishedCallbackFiresBeforeFirstRecord) {
  TcpWorld w;
  std::vector<std::string> order;
  w.b.tcp().listen(443, [&](TcpConnection& c) {
    TcpCallbacks cbs;
    cbs.on_established = [&] { order.push_back("est"); };
    cbs.on_record = [&](const TlsRecord&) { order.push_back("rec"); };
    c.set_callbacks(std::move(cbs));
  });
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  cc.send_record(rec(10, 0));
  w.sim.run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "est");
  EXPECT_EQ(order[1], "rec");
}

TEST(TcpEdge, AbortDuringHandshakeIsClean) {
  TcpWorld w;
  w.b.tcp().listen(443, [](TcpConnection&) {});
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, TcpCallbacks{});
  cc.abort();  // still SYN_SENT
  w.sim.run_all();
  EXPECT_EQ(w.a.tcp().connection_count(), 0u);
}

TEST(TcpEdge, CloseIsIdempotent) {
  TcpWorld w;
  w.b.tcp().listen(443, [](TcpConnection&) {});
  int closed = 0;
  TcpCallbacks cbs;
  cbs.on_closed = [&](TcpCloseReason) { ++closed; };
  TcpConnection& cc = w.a.tcp().connect(Endpoint{w.b.ip(), 443}, std::move(cbs));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(1));
  cc.close();
  cc.close();
  cc.close();
  w.sim.run_all();
  EXPECT_EQ(closed, 1);
}

/// Middlebox that can swallow ACKs in one direction (to starve keep-alives).
struct AckEater : NetNode {
  Link* lan{nullptr};
  Link* wan{nullptr};
  bool eat_from_wan{false};
  void receive(Packet p, Link& from) override {
    if (&from == wan && eat_from_wan) return;
    (&from == lan ? wan : lan)->send_from(*this, std::move(p));
  }
  [[nodiscard]] std::string name() const override { return "ack-eater"; }
};

TEST(TcpEdge, KeepaliveProbesExhaustOnDeadPeer) {
  sim::Simulation sim{2};
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  AckEater mb;
  Link& l1 = net.add_link(a, mb, sim::milliseconds(2));
  Link& l2 = net.add_link(mb, b, sim::milliseconds(2));
  a.attach(l1);
  b.attach(l2);
  mb.lan = &l1;
  mb.wan = &l2;


  b.tcp().listen(443, [](TcpConnection&) {});
  TcpOptions opts;
  opts.keepalive_enabled = true;
  opts.keepalive_idle = sim::seconds(5);
  opts.keepalive_interval = sim::seconds(3);
  opts.keepalive_probes = 3;
  bool closed = false;
  TcpCloseReason reason{};
  TcpCallbacks cbs;
  cbs.on_closed = [&](TcpCloseReason r) {
    closed = true;
    reason = r;
  };
  a.tcp().connect(Endpoint{b.ip(), 443}, std::move(cbs), opts);
  sim.run_until(sim::TimePoint{} + sim::seconds(2));
  // The peer "dies": its responses stop reaching us.
  mb.eat_from_wan = true;
  sim.run_until(sim::TimePoint{} + sim::minutes(2));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kKeepaliveTimeout);
}

TEST(DnsEdge, MultipleARecordsReturned) {
  sim::Simulation sim{4};
  Network net{sim};
  Host client{net, "c", IpAddress(10, 0, 0, 1)};
  Host server{net, "dns", IpAddress(8, 8, 8, 8)};
  Link& l = net.add_link(client, server, sim::milliseconds(2));
  client.attach(l);
  server.attach(l);
  DnsZone zone;
  zone.set("multi.example", {IpAddress(1, 1, 1, 1), IpAddress(2, 2, 2, 2)});
  DnsServerApp app{server, zone};
  DnsClient resolver{client, {server.ip(), DnsServerApp::kPort}};
  std::vector<IpAddress> got;
  resolver.resolve("multi.example",
                   [&](const auto& ips) { got.assign(ips.begin(), ips.end()); });
  sim.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], IpAddress(1, 1, 1, 1));
}

TEST(DnsEdge, ConcurrentQueriesDemuxById) {
  sim::Simulation sim{4};
  Network net{sim};
  Host client{net, "c", IpAddress(10, 0, 0, 1)};
  Host server{net, "dns", IpAddress(8, 8, 8, 8)};
  Link& l = net.add_link(client, server, sim::milliseconds(2));
  client.attach(l);
  server.attach(l);
  DnsZone zone;
  zone.set("a.example", {IpAddress(1, 0, 0, 1)});
  zone.set("b.example", {IpAddress(2, 0, 0, 2)});
  DnsServerApp app{server, zone};
  DnsClient resolver{client, {server.ip(), DnsServerApp::kPort}};
  IpAddress ra{}, rb{};
  resolver.resolve("a.example",
                   [&](const auto& ips) { ra = ips.at(0); });
  resolver.resolve("b.example",
                   [&](const auto& ips) { rb = ips.at(0); });
  sim.run_all();
  EXPECT_EQ(ra, IpAddress(1, 0, 0, 1));
  EXPECT_EQ(rb, IpAddress(2, 0, 0, 2));
}

TEST(MiddleBoxEdge, UnattachedLinksThrow) {
  sim::Simulation sim{4};
  Network net{sim};
  MiddleBox mb{net, "mb"};
  Packet p;
  EXPECT_THROW(mb.send_to_lan(p), std::logic_error);
  EXPECT_THROW(mb.send_to_wan(p), std::logic_error);
}

TEST(HostEdge, SendWithoutLinkThrows) {
  sim::Simulation sim{4};
  Network net{sim};
  Host h{net, "h", IpAddress(10, 0, 0, 9)};
  Packet p;
  EXPECT_THROW(h.send(p), std::logic_error);
}

TEST(HostEdge, IgnoresForeignDestination) {
  TcpWorld w;
  // A UDP datagram addressed to a third IP traverses the link but is not
  // delivered to either stack.
  int got = 0;
  w.b.udp().bind_any([&](const Packet&) { ++got; });
  w.a.udp().send_datagram({w.a.ip(), 1}, {IpAddress(9, 9, 9, 9), 9}, 10);
  w.sim.run_all();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace vg::net
