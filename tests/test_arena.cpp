#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/Host.h"
#include "netsim/Node.h"
// Defines the counting global operator new/delete for this binary: every
// allocation anywhere in the process bumps the counter, so "zero allocations
// per event" below really means zero.
#include "testutil/CountingAllocator.h"
#include "simcore/Arena.h"

namespace vg {
namespace {

using namespace vg::net;

// ---------------------------------------------------------------------------
// Arena: bump allocation, bin recycling, episode reset
// ---------------------------------------------------------------------------

TEST(Arena, BinnedBlocksAreRecycled) {
  sim::Arena arena;
  void* p1 = arena.allocate(48);  // 64-byte class
  arena.deallocate(p1, 48);
  void* p2 = arena.allocate(64);  // same class: must reuse the freed block
  EXPECT_EQ(p1, p2);
  // A different class bumps fresh storage instead.
  void* p3 = arena.allocate(128);
  EXPECT_NE(p2, p3);
}

TEST(Arena, SteadyChurnNeedsOnlyOneChunk) {
  sim::Arena arena;
  for (int i = 0; i < 100'000; ++i) {
    void* p = arena.allocate(1024);
    arena.deallocate(p, 1024);
  }
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.reserved_bytes(), sim::Arena::kDefaultChunk);
}

TEST(Arena, OversizeRequestGrowsChunkToFit) {
  sim::Arena arena;
  void* p = arena.allocate(256 * 1024);  // > kMaxBinned and > kDefaultChunk
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 256u * 1024u);
  // Oversize blocks are bump-only: deallocate is a no-op until reset.
  arena.deallocate(p, 256 * 1024);
  EXPECT_GT(arena.used_bytes(), 0u);
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(Arena, ResetKeepsChunksMapped) {
  sim::Arena arena;
  // Force a couple of chunks into existence.
  for (int i = 0; i < 40; ++i) (void)arena.allocate(4096);
  const std::size_t reserved = arena.reserved_bytes();
  const std::size_t chunks = arena.chunk_count();
  ASSERT_GT(chunks, 1u);

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);

  // Replaying the same episode reuses the retained chunks: no new memory.
  const std::size_t allocs = testutil::allocations_during([&] {
    for (int i = 0; i < 40; ++i) (void)arena.allocate(4096);
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

// ---------------------------------------------------------------------------
// Arena::trim(): hibernation gives unreachable chunks back to the OS
// ---------------------------------------------------------------------------

TEST(Arena, TrimReleasesChunksPastTheCursor) {
  sim::Arena arena{4096};
  // Grow a multi-chunk arena, then rewind usage into the first chunk so the
  // tail chunks are provably unreachable (the cursor never moves backwards
  // within an episode, so nothing past it can hold a live block).
  for (int i = 0; i < 12; ++i) (void)arena.allocate(2048);
  const std::size_t grown_chunks = arena.chunk_count();
  const std::size_t grown_reserved = arena.reserved_bytes();
  ASSERT_GT(grown_chunks, 2u);

  arena.reset();
  void* live = arena.allocate(64);  // cursor back in chunk 0
  ASSERT_NE(live, nullptr);

  const std::size_t freed = arena.trim();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(arena.reserved_bytes(), grown_reserved - freed);
  EXPECT_LT(arena.chunk_count(), grown_chunks);
  EXPECT_GT(arena.used_bytes(), 0u);  // the live block survived

  // The arena still works after the trim: it re-grows on demand.
  for (int i = 0; i < 12; ++i) (void)arena.allocate(2048);
  EXPECT_GE(arena.reserved_bytes(), grown_reserved - freed);
}

TEST(Arena, TrimOnEmptyArenaReleasesEverything) {
  sim::Arena arena{4096};
  for (int i = 0; i < 8; ++i) (void)arena.allocate(2048);
  arena.reset();
  const std::size_t reserved = arena.reserved_bytes();
  ASSERT_GT(reserved, 0u);

  const std::size_t freed = arena.trim();
  EXPECT_EQ(freed, reserved);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  EXPECT_EQ(arena.used_bytes(), 0u);

  // And it comes back to life on the next allocation.
  void* p = arena.allocate(128);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(Arena, SteadyEpisodesAfterTrimStayAllocationFree) {
  sim::Arena arena{4096};
  auto episode = [&arena] {
    for (int i = 0; i < 12; ++i) (void)arena.allocate(2048);
  };
  episode();
  arena.reset();
  (void)arena.trim();  // empty arena: full release

  // Episode after the trim re-acquires its chunks once...
  episode();
  arena.reset();
  const std::size_t reserved = arena.reserved_bytes();

  // ...and from then on identical episodes run inside retained chunks with
  // zero global allocations, exactly like the no-trim steady state.
  const std::size_t allocs = testutil::allocations_during([&] {
    for (int i = 0; i < 3; ++i) {
      episode();
      arena.reset();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

// ---------------------------------------------------------------------------
// ArenaAlloc: the allocator handle
// ---------------------------------------------------------------------------

TEST(ArenaAlloc, NullArenaFallsBackToGlobalAllocator) {
  // Heap semantics: a default-constructed handle behaves like std::allocator.
  std::vector<int, sim::ArenaAlloc<int>> v;
  const std::size_t allocs = testutil::allocations_during([&] {
    for (int i = 0; i < 100; ++i) v.push_back(i);
  });
  EXPECT_GT(allocs, 0u);
  EXPECT_EQ(v.size(), 100u);
}

TEST(ArenaAlloc, ArenaVectorDoesNotTouchGlobalAllocator) {
  sim::Arena arena;
  // Warm pass: acquires the arena's first chunk and populates the growth-size
  // bins; every block frees back into the arena when the vector dies.
  {
    std::vector<int, sim::ArenaAlloc<int>> warm{sim::ArenaAlloc<int>{&arena}};
    for (int i = 0; i < 2'000; ++i) warm.push_back(i);
  }
  std::vector<int, sim::ArenaAlloc<int>> v{sim::ArenaAlloc<int>{&arena}};
  const std::size_t allocs = testutil::allocations_during([&] {
    for (int i = 0; i < 2'000; ++i) v.push_back(i);
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(v.size(), 2'000u);
}

TEST(ArenaAlloc, CopiesStayOnTheSourceArena) {
  sim::Arena arena;
  RecordVec a{sim::ArenaAlloc<TlsRecord>{&arena}};
  a.push_back(TlsRecord{});
  RecordVec b = a;  // select_on_container_copy_construction keeps the arena
  EXPECT_EQ(b.get_allocator().arena(), &arena);
  RecordVec c = std::move(a);
  EXPECT_EQ(c.get_allocator().arena(), &arena);
}

// ---------------------------------------------------------------------------
// TagPool: interning
// ---------------------------------------------------------------------------

TEST(TagPool, InternedTagsArePointerIdentical) {
  sim::TagPool pool;
  const std::string runtime_built = "voice-cmd-end:" + std::to_string(123);
  const std::string_view v1 = pool.intern(runtime_built);
  const std::string_view v2 = pool.intern("voice-cmd-end:123");
  EXPECT_EQ(v1.data(), v2.data());
  EXPECT_EQ(pool.size(), 1u);

  const std::string_view other = pool.intern("activation:7");
  EXPECT_NE(other.data(), v1.data());
  EXPECT_EQ(pool.size(), 2u);

  // Re-interning known content is a pure hash probe.
  const std::size_t allocs = testutil::allocations_during(
      [&] { (void)pool.intern("voice-cmd-end:123"); });
  EXPECT_EQ(allocs, 0u);
}

TEST(Simulation, ArenaFactoryWiresPacketsAndHeapModeDoesNot) {
  sim::Simulation with_arena{1};
  ASSERT_NE(with_arena.arena_ptr(), nullptr);
  Packet p = with_arena.make<Packet>();
  EXPECT_EQ(p.records.get_allocator().arena(), with_arena.arena_ptr());

  sim::Simulation heap{1, sim::Simulation::Options{/*use_arena=*/false}};
  EXPECT_EQ(heap.arena_ptr(), nullptr);
  Packet q = heap.make<Packet>();
  EXPECT_EQ(q.records.get_allocator().arena(), nullptr);
}

// ---------------------------------------------------------------------------
// The headline regression: steady-state TCP forwarding allocates nothing
// ---------------------------------------------------------------------------

struct TcpPair {
  sim::Simulation sim;
  Network net{sim};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  TcpConnection* client{nullptr};
  std::uint64_t records_seen{0};
  std::uint64_t bytes_seen{0};

  explicit TcpPair(std::uint64_t seed = 7) : sim(seed) { init(); }
  TcpPair(std::uint64_t seed, sim::Arena* arena) : sim(seed, arena) { init(); }

  void init() {
    Link& l = net.add_link(a, b, sim::milliseconds(5));
    a.attach(l);
    b.attach(l);
    b.tcp().listen(443, [this](TcpConnection& c) {
      TcpCallbacks cbs;
      cbs.on_record = [this](const TlsRecord& r) {
        ++records_seen;
        bytes_seen += r.length;
      };
      c.set_callbacks(std::move(cbs));
    });
    client = &a.tcp().connect(Endpoint{b.ip(), 443}, TcpCallbacks{});
    sim.run_all();  // handshake
  }

  /// One traffic round: n records sent 10 ms apart, run to quiescence.
  void round(int n) {
    for (int i = 0; i < n; ++i) {
      sim.after(sim::milliseconds(10 * (i + 1)), [this, i] {
        TlsRecord r;
        r.length = 1200;
        r.tls_seq = seq_++;
        r.tag = (i % 2 == 0) ? "voice-audio" : "stream-meta";
        client->send_record(std::move(r));
      });
    }
    sim.run_all();
  }

 private:
  std::uint64_t seq_{0};
};

TEST(ArenaRegression, SteadyStateTcpForwardingIsAllocationFree) {
  TcpPair w;
  ASSERT_TRUE(w.client->established());
  // Warm-up at the measured burst size: grows the event queue's slot table,
  // the connection's deque/vector capacities and the arena's free bins to
  // their steady-state footprint.
  for (int i = 0; i < 6; ++i) w.round(256);
  const std::uint64_t seen_before = w.records_seen;

  const std::size_t allocs =
      testutil::allocations_during([&] { w.round(256); });

  EXPECT_EQ(allocs, 0u) << "steady-state send/deliver/ack cycle hit the "
                           "global allocator " << allocs << " times";
  EXPECT_EQ(w.records_seen, seen_before + 256);
}

TEST(ArenaRegression, HeapModeStillAllocatesPerPacket) {
  // Sanity check that the regression above is measuring something real: the
  // identical workload in heap (seed-semantics) mode does allocate.
  sim::Simulation heap{7, sim::Simulation::Options{/*use_arena=*/false}};
  Network net{heap};
  Host a{net, "a", IpAddress(10, 0, 0, 1)};
  Host b{net, "b", IpAddress(10, 0, 0, 2)};
  Link& l = net.add_link(a, b, sim::milliseconds(5));
  a.attach(l);
  b.attach(l);
  b.tcp().listen(443, [](TcpConnection&) {});
  TcpConnection* client = &a.tcp().connect(Endpoint{b.ip(), 443}, TcpCallbacks{});
  heap.run_all();
  ASSERT_TRUE(client->established());

  std::uint64_t seq = 0;
  auto burst = [&] {
    for (int i = 0; i < 64; ++i) {
      heap.after(sim::milliseconds(10 * (i + 1)), [&, i] {
        TlsRecord r;
        r.length = 1200;
        r.tls_seq = seq++;
        r.tag = "voice-audio";
        client->send_record(std::move(r));
      });
    }
    heap.run_all();
  };
  for (int i = 0; i < 6; ++i) burst();  // same warm-up discipline
  const std::size_t allocs = testutil::allocations_during(burst);
  EXPECT_GT(allocs, 0u);
}

TEST(ArenaRegression, EpisodeResetReturnsToCapacityBaseline) {
  sim::Arena arena;
  auto episode = [&arena] {
    TcpPair w{11, &arena};
    w.round(128);
    EXPECT_EQ(w.records_seen, 128u);
  };

  episode();  // episode 0 acquires whatever capacity the workload needs
  arena.reset();
  const std::size_t reserved = arena.reserved_bytes();
  const std::size_t chunks = arena.chunk_count();
  EXPECT_EQ(arena.used_bytes(), 0u);
  ASSERT_GT(chunks, 0u);

  // Every later identical episode runs inside the retained chunks: reset
  // reclaims everything, and the arena never grows again.
  for (int i = 0; i < 3; ++i) {
    episode();
    arena.reset();
    EXPECT_EQ(arena.used_bytes(), 0u) << "episode " << i;
    EXPECT_EQ(arena.reserved_bytes(), reserved) << "episode " << i;
    EXPECT_EQ(arena.chunk_count(), chunks) << "episode " << i;
  }
}

}  // namespace
}  // namespace vg
