/// Detailed behaviour tests of the speaker traffic models — the observable
/// facts §IV-B reports, verified at the packet level through a transparent
/// observer middlebox.

#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "netsim/MiddleBox.h"
#include "speaker/EchoDot.h"
#include "speaker/GoogleHomeMini.h"

namespace vg {
namespace {

using net::IpAddress;

cloud::CloudFarm::Options no_migration() {
  cloud::CloudFarm::Options o;
  o.avs_migration_mean = sim::Duration{0};
  return o;
}

/// speaker -- observer wire -- router -- cloud.
struct ObservedWorld {
  sim::Simulation sim{17};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, no_migration()};
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};
  net::MiddleBox wire{net, "wire"};

  struct Upstream {
    double t;
    std::uint32_t len;
    net::IpAddress dst;
  };
  std::vector<Upstream> upstream;

  ObservedWorld() {
    net::Link& lan = net.add_link(speaker_host, wire, sim::milliseconds(2));
    speaker_host.attach(lan);
    wire.set_lan_link(lan);
    net::Link& up = net.add_link(wire, router, sim::milliseconds(2));
    wire.set_wan_link(up);
    router.add_route(speaker_host.ip(), up);
    wire.add_observer([this](const net::Packet& p, net::Direction d) {
      if (d == net::Direction::kLanToWan &&
          p.protocol == net::Protocol::kTcp && p.payload_length() > 0) {
        upstream.push_back({sim.now().seconds(), p.payload_length(), p.dst.ip});
      }
    });
  }
};

TEST(EchoDotDetails, EmitsExactEstablishmentSignatureOnBoot) {
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(5));
  ASSERT_GE(w.upstream.size(), speaker::kAvsConnectionSignature.size());
  for (std::size_t i = 0; i < speaker::kAvsConnectionSignature.size(); ++i) {
    EXPECT_EQ(w.upstream[i].len, speaker::kAvsConnectionSignature[i])
        << "packet " << i;
  }
}

TEST(EchoDotDetails, HeartbeatsAre41BytesEvery30Seconds) {
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::minutes(3));

  std::vector<double> hb_times;
  for (const auto& u : w.upstream) {
    if (u.len == 41) hb_times.push_back(u.t);
  }
  ASSERT_GE(hb_times.size(), 5u);  // ~6 in 3 minutes
  for (std::size_t i = 1; i < hb_times.size(); ++i) {
    EXPECT_NEAR(hb_times[i] - hb_times[i - 1], 30.0, 0.5) << i;
  }
}

TEST(EchoDotDetails, CommandPhaseEndsWithAudioBurst) {
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  opts.phase1.irregular_prob = 0.0;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  const std::size_t before = w.upstream.size();

  speaker::CommandSpec c;
  c.id = 1;
  c.words = 6;  // 3.6 s utterance
  echo.hear_command(c);
  w.sim.run_until(w.sim.now() + sim::seconds(8));

  // The audio burst: >= 6 packets of 1180-1420 bytes at the end of phase 1.
  int audio = 0;
  for (std::size_t i = before; i < w.upstream.size(); ++i) {
    if (w.upstream[i].len >= 1180 && w.upstream[i].len <= 1420) ++audio;
  }
  EXPECT_GE(audio, 6);
}

TEST(EchoDotDetails, MiscConnectionsGoToOtherAmazonIps) {
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::seconds(15);
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::minutes(3));

  const auto misc_ips = w.farm.other_amazon_ips();
  bool saw_misc = false;
  for (const auto& u : w.upstream) {
    for (auto ip : misc_ips) {
      if (u.dst == ip) saw_misc = true;
    }
  }
  EXPECT_TRUE(saw_misc);
  EXPECT_TRUE(echo.connected());  // main session unaffected
}

TEST(EchoDotDetails, CommandWhileConnectingYieldsExactlyOneResult) {
  // A command heard in the boot window (before/while the AVS connection is
  // established) must produce exactly one interaction result, whichever way
  // it resolves.
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  opts.response_timeout = sim::seconds(10);
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  speaker::CommandSpec c;
  c.id = 9;
  c.words = 4;
  echo.hear_command(c);  // wake fires ~0.6 s in; boot takes ~50 ms
  w.sim.run_until(sim::TimePoint{} + sim::seconds(30));
  ASSERT_EQ(echo.interactions().size(), 1u);
}

TEST(GhmDetails, TransportMixMatchesProbability) {
  ObservedWorld w;
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 0.7;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  for (int i = 0; i < 30; ++i) {
    speaker::CommandSpec c;
    c.id = static_cast<std::uint64_t>(i + 1);
    c.words = 5;
    ghm.hear_command(c);
    w.sim.run_until(w.sim.now() + sim::seconds(30));
  }
  EXPECT_EQ(ghm.quic_interactions() + ghm.tcp_interactions(), 30u);
  EXPECT_GT(ghm.quic_interactions(), 12u);  // ~21 expected
  EXPECT_GT(ghm.tcp_interactions(), 2u);    // ~9 expected
  EXPECT_EQ(w.farm.all_executed().size(), 30u);
}

TEST(GhmDetails, NoStandingConnectionWhenIdle) {
  ObservedWorld w;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint()};
  ghm.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::minutes(2));
  // No interaction -> no upstream traffic at all (on-demand connections).
  EXPECT_TRUE(w.upstream.empty());
}

TEST(CloudFarm, ExecutedListIsTimeSorted) {
  ObservedWorld w;
  speaker::EchoDotModel::Options opts;
  opts.misc_connection_mean = sim::Duration{0};
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(5));
  for (int i = 0; i < 3; ++i) {
    speaker::CommandSpec c;
    c.id = static_cast<std::uint64_t>(i + 1);
    c.words = 4;
    echo.hear_command(c);
    w.sim.run_until(w.sim.now() + sim::seconds(40));
  }
  const auto all = w.farm.all_executed();
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].when, all[i].when);
  }
}

TEST(CloudFarm, ScheduledMigrationEventuallyHappens) {
  sim::Simulation sim{19};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm::Options o;
  o.avs_migration_mean = sim::minutes(20);
  cloud::CloudFarm farm{net, router, o};
  sim.run_until(sim::TimePoint{} + sim::hours(4));
  // ~12 expected at a 20-minute mean.
  EXPECT_GE(farm.migrations(), 3u);
  // Zone follows the active IP.
  EXPECT_EQ(farm.zone().lookup(farm.avs_domain()).front(),
            farm.current_avs_ip());
}

}  // namespace
}  // namespace vg
