/// Large-population fleet smoke (ctest label: fleet-big). The default size
/// keeps an asan build comfortable; CI's fleet-big presets scale it up via
/// VG_FLEET_BIG_HOMES (push: 20k, nightly: larger) without recompiling.
///
/// What scale adds over test_fleet.cpp's six-home parity matrix: the wake
/// calendar's heap actually gets deep, hibernation triggers across thousands
/// of homes, the swap-and-pop retirement path churns the resident vector
/// hard, and the parked population holds a measurable footprint.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "fleet/AggregateStats.h"
#include "fleet/FleetRunner.h"
#include "fleet/WorldTemplate.h"
#include "scenario/ScenarioLoader.h"

namespace vg::fleet {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::uint64_t parsed = std::strtoull(v, nullptr, 10);
  return parsed == 0 ? fallback : parsed;
}

std::uint64_t big_homes() { return env_u64("VG_FLEET_BIG_HOMES", 2000); }

constexpr const char* kBigScn = R"([scenario]
name = fleet-big
kind = home
seed = 77
speaker = echo_dot

[home]
testbed = apartment
owners = 2

[schedule]
command = 10 legit
command = 25 attack
command = 40 legit
drain_s = 120

[faults]
link = lan flap 15 2

[population]
homes = 1000000
command_jitter_s = 1.5
attack_flip = 0.2
)";

WorldTemplate big_template() {
  return WorldTemplate{scenario::ScenarioLoader::load(kBigScn)};
}

TEST(FleetScale, ShardedRunMatchesSerialAtPopulationScale) {
  const WorldTemplate tmpl = big_template();
  const std::uint64_t homes = big_homes();
  const AggregateStats serial = run_fleet_serial(tmpl, 0, homes);
  EXPECT_EQ(serial.counters().homes, homes);

  FleetConfig cfg;
  cfg.homes = homes;
  cfg.shards = 8;
  WakeTelemetry tel;
  const AggregateStats fleet = run_fleet(tmpl, cfg, &tel);
  EXPECT_TRUE(fleet == serial)
      << homes << " homes: fingerprint " << fleet.fingerprint() << " != "
      << serial.fingerprint();

  // The 120 s drain leaves a long idle tail per home: the calendar must be
  // skipping real work (well over one empty epoch per home), not
  // degenerating into the epoch grid.
  EXPECT_GT(tel.epochs_skipped, homes);
  EXPECT_GT(tel.hibernations, 0u);
}

TEST(FleetScale, ResidencyCapAndWholeRangeAgree) {
  const WorldTemplate tmpl = big_template();
  // Residency changes construction/retirement interleaving drastically at
  // scale (cap 64 vs thousands resident) — stats must not move.
  const std::uint64_t homes = std::min<std::uint64_t>(big_homes(), 5000);
  FleetConfig whole;
  whole.homes = homes;
  whole.shards = 4;
  FleetConfig capped;
  capped.homes = homes;
  capped.shards = 4;
  capped.max_resident = 64;
  EXPECT_TRUE(run_fleet(tmpl, whole) == run_fleet(tmpl, capped));
}

TEST(FleetScale, ParkedPopulationDrainsToSerialParity) {
  const WorldTemplate tmpl = big_template();
  const std::uint64_t homes = std::min<std::uint64_t>(big_homes(), 2000);
  const AggregateStats serial = run_fleet_serial(tmpl, 0, homes);
  ParkedFleet parked{tmpl, homes};
  EXPECT_EQ(parked.count(), homes);
  EXPECT_GT(parked.trim_bytes(), 0u);
  EXPECT_TRUE(parked.finish() == serial);
}

}  // namespace
}  // namespace vg::fleet
