#include <gtest/gtest.h>

#include "simcore/EventQueue.h"
#include "simcore/Log.h"
#include "simcore/Rng.h"
#include "simcore/Simulation.h"
#include "simcore/Time.h"

namespace vg::sim {
namespace {

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(seconds(2).ns(), 2'000'000'000);
  EXPECT_EQ((seconds(1) + milliseconds(500)).millis(), 1500.0);
  EXPECT_EQ((seconds(3) - seconds(1)).seconds(), 2.0);
  EXPECT_EQ((milliseconds(10) * 3).millis(), 30.0);
  EXPECT_EQ((seconds(10) / 4).millis(), 2500.0);
  EXPECT_LT(seconds(1), seconds(2));
}

TEST(Time, FromSecondsRoundtrip) {
  EXPECT_NEAR(from_seconds(1.622).seconds(), 1.622, 1e-9);
  EXPECT_EQ(from_seconds(0.001).ns(), 1'000'000);
}

TEST(Time, TimePointArithmetic) {
  TimePoint t0;
  TimePoint t1 = t0 + seconds(5);
  EXPECT_EQ((t1 - t0).seconds(), 5.0);
  EXPECT_EQ((t1 - seconds(2)).seconds(), 3.0);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(TimePoint{} + hours(1) + minutes(2) + seconds(3) +
                        milliseconds(45)),
            "1:02:03.045");
  EXPECT_EQ(format_duration(milliseconds(40)), "40.000 ms");
  EXPECT_EQ(format_duration(from_seconds(1.622)), "1.622 s");
}

TEST(Time, ScaledRoundsTowardZero) {
  EXPECT_EQ(seconds(10).scaled(0.15).ns(), 1'500'000'000);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  RngRegistry a{42}, b{42}, c{43};
  EXPECT_EQ(a.stream("x").uniform_int(0, 1'000'000),
            b.stream("x").uniform_int(0, 1'000'000));
  // Different seed: overwhelmingly likely to differ.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    any_diff |= a.stream("y").uniform_int(0, 1'000'000) !=
                c.stream("y").uniform_int(0, 1'000'000);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, StreamsAreIndependentByName) {
  RngRegistry a{7};
  // Drawing from stream "p" must not change what "q" produces.
  RngRegistry b{7};
  (void)a.stream("p").uniform();
  (void)a.stream("p").uniform();
  EXPECT_EQ(a.stream("q").uniform_int(0, 1'000'000),
            b.stream("q").uniform_int(0, 1'000'000));
}

TEST(Rng, UniformBounds) {
  RngRegistry r{1};
  auto& s = r.stream("u");
  for (int i = 0; i < 1000; ++i) {
    const double v = s.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const auto k = s.uniform_int(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  RngRegistry r{1};
  auto& s = r.stream("w");
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    counts[s.weighted_index({0.0, 1.0, 9.0})]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 4);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  RngRegistry r{1};
  EXPECT_THROW(r.stream("w").weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.stream("w").weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  RngRegistry r{1};
  auto& s = r.stream("c");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.chance(0.0));
    EXPECT_TRUE(s.chance(1.0));
  }
}

TEST(Rng, ShuffleKeepsElements) {
  RngRegistry r{1};
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  r.stream("s").shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventId id = q.schedule(TimePoint{10}, [&] { ++fired; });
  q.schedule(TimePoint{20}, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventId id = q.schedule(TimePoint{10}, [] {});
  q.schedule(TimePoint{20}, [] {});
  q.pop().cb();
  q.cancel(id);  // already fired
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), TimePoint{20});
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  EventId id = q.schedule(TimePoint{10}, [] {});
  q.schedule(TimePoint{20}, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  TimePoint seen;
  sim.after(seconds(5), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, TimePoint{} + seconds(5));
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.after(seconds(1), [&] { ++fired; });
  sim.after(seconds(10), [&] { ++fired; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(5));
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledExactlyAtHorizonRun) {
  Simulation sim;
  bool fired = false;
  sim.after(seconds(5), [&] { fired = true; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulation, SchedulingIntoPastThrows) {
  Simulation sim;
  sim.after(seconds(1), [] {});
  sim.run_all();
  EXPECT_THROW(sim.at(TimePoint{} + milliseconds(1), [] {}), std::logic_error);
}

TEST(Simulation, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<double> times;
  sim.after(seconds(1), [&] {
    times.push_back(sim.now().seconds());
    sim.after(seconds(1), [&] { times.push_back(sim.now().seconds()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulation, CancelTimer) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.after(seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST(Logger, CaptureSinkReceivesRecords) {
  Simulation sim;
  std::vector<LogRecord> records;
  sim.logger().add_sink(LogLevel::kInfo, capture_sink(records));
  sim.after(seconds(2), [&] { sim.log(LogLevel::kInfo, "test", "hello"); });
  sim.log(LogLevel::kDebug, "test", "filtered");
  sim.run_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "test");
  EXPECT_EQ(records[0].message, "hello");
  EXPECT_EQ(records[0].time, TimePoint{} + seconds(2));
}

TEST(Logger, LevelFiltering) {
  Logger log;
  std::vector<LogRecord> warns, all;
  log.add_sink(LogLevel::kWarn, capture_sink(warns));
  log.add_sink(LogLevel::kTrace, capture_sink(all));
  log.log(TimePoint{}, LogLevel::kInfo, "c", "info");
  log.log(TimePoint{}, LogLevel::kError, "c", "err");
  EXPECT_EQ(warns.size(), 1u);
  EXPECT_EQ(all.size(), 2u);
}

}  // namespace
}  // namespace vg::sim
