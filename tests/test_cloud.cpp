/// Direct unit tests for the cloud backends.

#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "netsim/Host.h"

namespace vg::cloud {
namespace {

using net::IpAddress;

struct CloudFixture : ::testing::Test {
  sim::Simulation sim{41};
  net::Network net{sim};
  net::Host server{net, "avs", IpAddress(52, 94, 232, 10)};
  net::Host client{net, "client", IpAddress(192, 168, 1, 200)};
  AvsServerApp app{server};

  CloudFixture() {
    net::Link& l = net.add_link(client, server, sim::milliseconds(5));
    client.attach(l);
    server.attach(l);
  }

  net::TcpConnection* connect() {
    return &client.tcp().connect(net::Endpoint{server.ip(), 443},
                                 net::TcpCallbacks{});
  }

  static net::TlsRecord rec(std::uint64_t seq, std::uint32_t len,
                            std::string_view tag) {
    net::TlsRecord r;
    r.length = len;
    r.tls_seq = seq;
    r.tag = tag;
    return r;
  }
};

TEST_F(CloudFixture, HeartbeatsAreAcknowledged) {
  std::size_t acks = 0;
  net::TcpCallbacks cbs;
  cbs.on_record = [&](const net::TlsRecord& r) {
    if (r.tag == "heartbeat-ack") ++acks;
  };
  net::TcpConnection& c =
      client.tcp().connect(net::Endpoint{server.ip(), 443}, std::move(cbs));
  for (std::uint64_t i = 0; i < 3; ++i) c.send_record(rec(i, 41, "heartbeat"));
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_EQ(acks, 3u);
  EXPECT_EQ(app.heartbeats_received(), 3u);
}

TEST_F(CloudFixture, InOrderCommandExecutesOnce) {
  net::TcpConnection* c = connect();
  c->send_record(rec(0, 500, "voice-audio"));
  c->send_record(rec(1, 500, "voice-cmd-end:42"));
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  ASSERT_EQ(app.executed().size(), 1u);
  EXPECT_EQ(app.executed()[0].command_tag, "voice-cmd-end:42");
  EXPECT_EQ(app.sequence_violations(), 0u);
}

TEST_F(CloudFixture, DuplicateSeqIsAViolation) {
  net::TcpConnection* c = connect();
  c->send_record(rec(0, 100, "x"));
  c->send_record(rec(0, 100, "x"));  // replayed record
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_EQ(app.sequence_violations(), 1u);
  EXPECT_EQ(app.sessions_killed(), 1u);
}

TEST_F(CloudFixture, DeadSessionIgnoresLaterRecords) {
  net::TcpConnection* c = connect();
  c->send_record(rec(2, 100, "gap"));  // immediate violation (expected 0)
  c->send_record(rec(3, 100, "voice-cmd-end:7"));
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_TRUE(app.executed().empty());
  EXPECT_EQ(app.sequence_violations(), 1u);
}

TEST_F(CloudFixture, CloseAllSessionsDrainsSpeakers) {
  bool closed = false;
  net::TcpCallbacks cbs;
  cbs.on_closed = [&](net::TcpCloseReason r) {
    closed = true;
    EXPECT_EQ(r, net::TcpCloseReason::kFin);
  };
  client.tcp().connect(net::Endpoint{server.ip(), 443}, std::move(cbs));
  sim.run_until(sim::TimePoint{} + sim::seconds(2));
  EXPECT_EQ(app.sessions_opened(), 1u);
  app.close_all_sessions();
  sim.run_until(sim.now() + sim::seconds(5));
  EXPECT_TRUE(closed);
}

TEST_F(CloudFixture, ResponseFollowsCommandAfterProcessingDelay) {
  sim::TimePoint cmd_done, first_response;
  net::TcpCallbacks cbs;
  cbs.on_record = [&](const net::TlsRecord& r) {
    if (first_response == sim::TimePoint{} && r.tag.rfind("response", 0) == 0) {
      first_response = sim.now();
    }
  };
  net::TcpConnection& c =
      client.tcp().connect(net::Endpoint{server.ip(), 443}, std::move(cbs));
  c.send_record(rec(0, 1000, "voice-cmd-end:1"));
  sim.run_until(sim::TimePoint{} + sim::seconds(1));
  cmd_done = sim::TimePoint{};  // command sent at ~connection time
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  ASSERT_NE(first_response, sim::TimePoint{});
  // Processing delay: 380 +- 150 ms plus RTTs.
  EXPECT_GT((first_response - cmd_done).seconds(), 0.2);
  EXPECT_LT((first_response - cmd_done).seconds(), 1.5);
}

TEST(GenericServer, AcksApplicationRecords) {
  sim::Simulation sim{43};
  net::Network net{sim};
  net::Host server{net, "misc", IpAddress(54, 239, 28, 20)};
  net::Host client{net, "client", IpAddress(192, 168, 1, 200)};
  net::Link& l = net.add_link(client, server, sim::milliseconds(5));
  client.attach(l);
  server.attach(l);
  GenericTlsServerApp app{server};

  std::size_t acks = 0;
  net::TcpCallbacks cbs;
  cbs.on_record = [&](const net::TlsRecord& r) {
    if (r.tag == "generic-ack") ++acks;
  };
  net::TcpConnection& c =
      client.tcp().connect(net::Endpoint{server.ip(), 443}, std::move(cbs));
  for (std::uint64_t i = 0; i < 4; ++i) {
    net::TlsRecord r;
    r.length = 120;
    r.tls_seq = i;
    c.send_record(r);
  }
  sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_EQ(acks, 4u);
  EXPECT_EQ(app.connections(), 1u);
}

}  // namespace
}  // namespace vg::cloud
