#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "simcore/BatchRunner.h"
#include "workload/TrialRunner.h"

/// \file test_packet_parity.cpp
/// Heap-vs-arena parity: the per-simulation arena changes where packet-path
/// bytes live, and must change nothing else. The same Table II workload run
/// with heap (seed) semantics and with the arena — serially and through the
/// BatchRunner — has to produce field-identical trial results and a
/// byte-identical trace.

namespace vg {
namespace {

using workload::TrialResult;
using workload::TrialSpec;
using workload::WorldConfig;

std::vector<TrialSpec> table2_workload(bool use_arena) {
  // The Table II matrix (house, 2 owners, phones), shortened: 4 trials of
  // 6 simulated hours each keep the test fast while still exercising
  // command interactions, reconnects and heartbeat traffic.
  auto specs = workload::table_matrix(WorldConfig::TestbedKind::kHouse,
                                      /*owners=*/2, /*watch=*/false,
                                      /*seed0=*/500, sim::hours(6));
  for (auto& spec : specs) {
    spec.world.use_arena = use_arena;
    spec.world.arena = nullptr;
  }
  return specs;
}

void expect_identical(const TrialResult& h, const TrialResult& a) {
  EXPECT_EQ(h.label, a.label);
  EXPECT_EQ(h.confusion.tp, a.confusion.tp);
  EXPECT_EQ(h.confusion.fn, a.confusion.fn);
  EXPECT_EQ(h.confusion.tn, a.confusion.tn);
  EXPECT_EQ(h.confusion.fp, a.confusion.fp);
  EXPECT_EQ(h.legit_issued, a.legit_issued);
  EXPECT_EQ(h.malicious_issued, a.malicious_issued);
  EXPECT_EQ(h.night_attacks, a.night_attacks);
  EXPECT_EQ(h.executed_events, a.executed_events);
  EXPECT_EQ(h.sim_seconds, a.sim_seconds);
  ASSERT_EQ(h.outcomes.size(), a.outcomes.size());
  for (std::size_t k = 0; k < h.outcomes.size(); ++k) {
    const auto& ho = h.outcomes[k];
    const auto& ao = a.outcomes[k];
    EXPECT_EQ(ho.id, ao.id);
    EXPECT_EQ(ho.malicious, ao.malicious);
    EXPECT_EQ(ho.executed, ao.executed);
    EXPECT_EQ(ho.when, ao.when);
    EXPECT_EQ(ho.issuer, ao.issuer);
    EXPECT_EQ(ho.owner_whereabouts, ao.owner_whereabouts);
  }
}

TEST(PacketParity, SerialHeapAndArenaRunsAreFieldIdentical) {
  const auto heap = workload::run_trials_serial(table2_workload(false));
  const auto arena = workload::run_trials_serial(table2_workload(true));
  ASSERT_EQ(heap.size(), arena.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    SCOPED_TRACE(heap[i].label);
    expect_identical(heap[i], arena[i]);
  }
}

TEST(PacketParity, BatchedArenaRunsMatchSerialHeapRuns) {
  // Cross-check both axes at once: worker-thread arenas (one thread_local
  // arena per pool worker, reset between trials) against the single-threaded
  // heap-semantics reference.
  const auto heap = workload::run_trials_serial(table2_workload(false));
  sim::BatchRunner pool{3};
  const auto arena = workload::run_trials(table2_workload(true), pool);
  ASSERT_EQ(heap.size(), arena.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    SCOPED_TRACE(heap[i].label);
    expect_identical(heap[i], arena[i]);
  }
}

// ---------------------------------------------------------------------------
// Byte-identical trace
// ---------------------------------------------------------------------------

std::string traced_run(bool use_arena) {
  workload::WorldConfig cfg;
  cfg.testbed = WorldConfig::TestbedKind::kHouse;
  cfg.speaker = WorldConfig::SpeakerType::kEchoDot;
  cfg.owner_count = 2;
  cfg.seed = 77;
  cfg.use_arena = use_arena;

  workload::SmartHomeWorld world{cfg};
  std::string trace;
  world.sim().logger().add_sink(
      sim::LogLevel::kTrace, [&trace](const sim::LogRecord& rec) {
        char line[512];
        const int n = std::snprintf(
            line, sizeof(line), "[%lld] %d %s: %s\n",
            static_cast<long long>(rec.time.ns()), static_cast<int>(rec.level),
            rec.component.c_str(), rec.message.c_str());
        if (n > 0) trace.append(line, static_cast<std::size_t>(n));
      });

  world.calibrate();
  speaker::CommandSpec cmd;
  cmd.id = 4242;
  cmd.text = "parity probe command";
  cmd.words = 6;
  world.hear_command(cmd);
  world.run_for(sim::minutes(5));
  return trace;
}

TEST(PacketParity, TraceIsByteIdenticalAcrossAllocators) {
  const std::string heap_trace = traced_run(false);
  const std::string arena_trace = traced_run(true);
  EXPECT_FALSE(heap_trace.empty());
  EXPECT_EQ(heap_trace, arena_trace);
}

}  // namespace
}  // namespace vg
