#!/usr/bin/env bash
# Exit-code contract test for the vgscn and vgtrace CLIs.
#
# Both tools promise the same scheme — 0 success, 1 runtime error or
# invariant/diff failure, 2 usage, 3 I/O, 4 corrupt trace / invalid
# scenario — and CI scripts branch on those codes, so each one is pinned
# here against a concrete input that must keep producing it.
#
# usage: test_cli_exit_codes.sh <vgscn> <vgtrace> <scenario-data-dir>

set -u

if [ $# -ne 3 ]; then
  echo "usage: $0 <vgscn> <vgtrace> <scenario-data-dir>" >&2
  exit 2
fi

VGSCN=$1
VGTRACE=$2
SCN_DIR=$3

TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

fails=0

expect() {
  want=$1
  shift
  "$@" >"$TMP/out" 2>"$TMP/err"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: exit $got, want $want: $*" >&2
    sed 's/^/  stdout: /' "$TMP/out" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: exit $got: $*"
  fi
}

# --- vgscn ------------------------------------------------------------------

# 0: a checked-in port validates, a generated world round-trips, and the
# fuzzer's per-seed harness holds on seed 1.
expect 0 "$VGSCN" validate "$SCN_DIR/chaos-baseline.scn"
expect 0 "$VGSCN" gen 1 "$TMP/gen.scn"
expect 0 "$VGSCN" validate "$TMP/gen.scn"
expect 0 "$VGSCN" run --seed 1
expect 0 "$VGSCN" list

# 1: a syntactically valid scenario whose only fault window opens long after
# the horizon — the plan is non-empty but injects nothing, which the
# invariant harness must flag.
sed 's/^link = .*/link = wan flap 1e+03 10/' \
  "$SCN_DIR/chaos-wan-flap-long.scn" >"$TMP/no-inject.scn"
expect 0 "$VGSCN" validate "$TMP/no-inject.scn"
expect 1 "$VGSCN" run "$TMP/no-inject.scn"

# --- vgscn fleet: the population runner shares the scheme -------------------

# 0: a scripted scenario with a [population] runs, with and without the
# serial/sharded parity check.
{ cat "$SCN_DIR/chaos-baseline.scn"
  printf '\n[population]\nhomes = 4\ncommand_jitter_s = 1\nattack_flip = 0.2\n'
} >"$TMP/pop.scn"
expect 0 "$VGSCN" validate "$TMP/pop.scn"
expect 0 "$VGSCN" fleet "$TMP/pop.scn"
expect 0 "$VGSCN" fleet "$TMP/pop.scn" --shards 2 --check
expect 0 "$VGSCN" fleet "$SCN_DIR/chaos-baseline.scn" --homes 2
# --resident caps concurrently-live homes per shard; --workers sizes the
# pool. Both accept 0 (= auto / whole range) and must not perturb results.
expect 0 "$VGSCN" fleet "$TMP/pop.scn" --resident 2 --workers 1 --check
expect 0 "$VGSCN" fleet "$TMP/pop.scn" --resident 0 --workers 0

# 1: a fleet whose fault plan never fires (same past-the-horizon trick as
# no-inject.scn above) violates the fleet invariants.
{ cat "$TMP/no-inject.scn"
  printf '\n[population]\nhomes = 2\n'
} >"$TMP/no-inject-pop.scn"
expect 1 "$VGSCN" fleet "$TMP/no-inject-pop.scn"

# --- vgscn fleet --fault-plan: named orchestration plans --------------------

# 0: a named plan orchestrates the population, every home recovers, and
# serial/sharded parity holds; --region-report adds the per-region table.
expect 0 "$VGSCN" fleet "$TMP/pop.scn" --shards 2 \
  --fault-plan cloud-capacity-crunch --region-report --check
expect 0 "$VGSCN" fleet "$TMP/pop.scn" --fault-plan correlated-storm

# 2: an unknown plan name (or a missing value) is a usage error.
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --fault-plan nope
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --fault-plan

# 4: a plan whose cloud-capacity envelope collides with the scenario's own
# [faults] cloud window is rejected before any home is built.
{ sed 's/^cloud = .*/cloud = 3e+01 35 rst/' \
    "$SCN_DIR/chaos-cloud-outage.scn"
  printf '\n[population]\nhomes = 4\n'
} >"$TMP/pop-collide.scn"
expect 4 "$VGSCN" fleet "$TMP/pop-collide.scn" --fault-plan cloud-capacity-crunch

# 4: more regions than homes guarantees zero-home regions — rejected.
{ cat "$SCN_DIR/chaos-baseline.scn"
  printf '\n[population]\nhomes = 2\n'
} >"$TMP/pop-tiny.scn"
expect 4 "$VGSCN" fleet "$TMP/pop-tiny.scn" --fault-plan regional-fcm-outage

# 2: usage errors.
expect 2 "$VGSCN"
expect 2 "$VGSCN" frobnicate
expect 2 "$VGSCN" run --seed
expect 2 "$VGSCN" gen not-a-number
expect 2 "$VGSCN" fleet
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --homes 0
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --shards 0
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --frobnicate
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --resident
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --resident lots
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --workers
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --workers many
expect 2 "$VGSCN" fleet "$TMP/pop.scn" --workers 5000

# 3: fleet I/O errors share the loader's code.
expect 3 "$VGSCN" fleet "$TMP/does-not-exist.scn"

# 4: a [population] on a capture-loop scenario is a validation error.
printf '[scenario]\nname = x\n[schedule]\ncommands = 4\n[population]\nhomes = 3\n' \
  >"$TMP/pop-on-capture.scn"
expect 4 "$VGSCN" fleet "$TMP/pop-on-capture.scn"

# 3: I/O errors.
expect 3 "$VGSCN" validate "$TMP/does-not-exist.scn"

# 4: parse/validation errors.
printf '[]\n' >"$TMP/malformed.scn"
expect 4 "$VGSCN" validate "$TMP/malformed.scn"
printf '[scenario]\nname = x\nkind = home\nspeaker = warp_drive\n' \
  >"$TMP/bad-value.scn"
expect 4 "$VGSCN" validate "$TMP/bad-value.scn"

# --- vgtrace ----------------------------------------------------------------

# 0: record two scenarios, replay one, diff a trace against itself.
expect 0 "$VGTRACE" record fallback_patterns "$TMP/a.vgt"
expect 0 "$VGTRACE" record echo_dot_tcp "$TMP/b.vgt"
expect 0 "$VGTRACE" replay "$TMP/a.vgt"
expect 0 "$VGTRACE" diff "$TMP/a.vgt" "$TMP/a.vgt"

# 1: different scenarios yield different traces.
expect 1 "$VGTRACE" diff "$TMP/a.vgt" "$TMP/b.vgt"

# 2: usage errors.
expect 2 "$VGTRACE"
expect 2 "$VGTRACE" diff "$TMP/a.vgt"

# 3: I/O errors — a missing trace, and directory mode over a directory that
# contains no *.vgt at all.
expect 3 "$VGTRACE" replay "$TMP/missing.vgt"
mkdir "$TMP/empty-dir"
expect 3 "$VGTRACE" replay "$TMP/empty-dir"
expect 3 "$VGTRACE" stats "$TMP/empty-dir"

# 4: corrupt trace.
printf 'this is not a vgt trace\n' >"$TMP/corrupt.vgt"
expect 4 "$VGTRACE" replay "$TMP/corrupt.vgt"

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all exit-code cases hold"
