#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

/// \file CountingAllocator.h
/// Global operator new/delete replacement that counts allocations, shared by
/// the allocation-regression suite (test_event_queue, test_arena) and
/// bench_throughput's allocs-per-event metric.
///
/// Include this header in EXACTLY ONE translation unit per binary: it
/// *defines* the replaceable global allocation functions. Any allocation
/// anywhere in the process (including the standard library) bumps the
/// counter, which is what makes "zero allocations per event" assertable.

namespace vg::testutil {

inline std::atomic<std::size_t> g_allocations{0};

/// Number of global operator new calls since process start.
inline std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Allocations that happened while running \p fn.
template <class Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before = allocation_count();
  fn();
  return allocation_count() - before;
}

}  // namespace vg::testutil

void* operator new(std::size_t size) {
  ++vg::testutil::g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++vg::testutil::g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
