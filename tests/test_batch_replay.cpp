/// Equivalence suite for the columnar replay path: BatchDecoder column-for-
/// field parity against TraceReader (including varint-boundary lengths and
/// fault frames), SpikeClassifier::feed_nonrule against feed, BatchReplayer
/// against the per-record Replayer oracle over the golden corpus and a large
/// randomized trace population, and the mmap/fread input paths against each
/// other.

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/BatchDecoder.h"
#include "trace/BatchReplayer.h"
#include "trace/Replayer.h"
#include "trace/TraceReader.h"
#include "trace/TraceWriter.h"
#include "voiceguard/GuardBox.h"

using namespace vg;
using trace::BatchDecoder;
using trace::BatchReplayer;
using trace::ColumnBatch;
using trace::FrameKind;
using trace::TraceBytes;
using trace::TraceReader;
using trace::TraceWriter;

namespace {

constexpr sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint{ms * 1'000'000};
}

const net::IpAddress kSpeaker{192, 168, 1, 200};
const net::IpAddress kAvsIp{10, 0, 0, 1};
const net::IpAddress kAvsIp2{10, 0, 0, 2};
const net::IpAddress kGoogleIp{10, 1, 0, 1};
const net::IpAddress kOtherIp{93, 184, 216, 34};
const net::IpAddress kOtherIp2{93, 184, 216, 35};

/// Lengths a random trace draws from: the whole rule alphabet (frequent
/// lengths, the pair, pattern firsts/tails), the heartbeat, varint encoding
/// boundaries, and plain non-alphabet lengths.
constexpr std::uint32_t kLenPool[] = {
    33,  41,  52,   75,   77,    113,   121,  131, 138, 250,
    277, 300, 650,  651,  1200,  127,   128,  100, 16383, 16384};

/// Inter-record gaps (ms) straddling every timer in the replayer: classify
/// timeout (300 ms), establishment window (1.5 s), spike idle gap (3 s).
constexpr std::int64_t kGapPoolMs[] = {0,   1,    5,    10,   40,  120,
                                       299, 300,  301,  1400, 1500, 1600,
                                       2900, 3000, 3100, 5000};

/// An alternative establishment prefix, consistently repeated so the
/// signature learner republishes mid-trace (>= min_length, not a prefix of
/// the shipped signature).
const std::vector<std::uint32_t> kAltSignature = {212, 90, 90, 333, 47, 47, 610, 18};

struct RandomTrace {
  std::vector<std::uint8_t> bytes;
  trace::ReplayOptions opts;
};

/// Generates one random but structurally valid trace exercising DNS-driven
/// AVS/Google identification, TCP establishment + learning, signature-based
/// re-identification, UDP flows, heartbeats, spikes across every rule, idle
/// gaps, timeouts, downstream noise and fault annotations.
RandomTrace random_trace(std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  const auto pick = [&](auto&& pool) {
    return pool[rng() % std::size(pool)];
  };

  RandomTrace out;
  switch (rng() % 4) {
    case 0: out.opts.mode = guard::GuardMode::kVoiceGuard; break;
    case 1: out.opts.mode = guard::GuardMode::kNaive; break;
    default: out.opts.mode = guard::GuardMode::kMonitor; break;
  }

  TraceWriter::Meta meta;
  meta.scenario = "random";
  meta.seed = seed;
  TraceWriter w{meta};

  std::int64_t t_ms = 0;
  const auto advance = [&] {
    t_ms += pick(kGapPoolMs);
    return at_ms(t_ms);
  };

  const net::IpAddress dsts[] = {kAvsIp, kAvsIp2, kGoogleIp, kOtherIp,
                                 kOtherIp2};
  std::vector<int> flows;
  std::uint16_t next_port = 40000;

  w.dns_answer(trace::kDomainAvs, rng() % 2 ? kAvsIp : kAvsIp2, advance());
  if (rng() % 2) w.dns_answer(trace::kDomainGoogle, kGoogleIp, advance());

  const int events = 8 + static_cast<int>(rng() % 50);
  for (int e = 0; e < events; ++e) {
    switch (rng() % 8) {
      case 0: {  // new flow
        const net::Protocol proto =
            rng() % 4 == 0 ? net::Protocol::kUdp : net::Protocol::kTcp;
        const net::IpAddress dst = dsts[rng() % std::size(dsts)];
        const int f = w.add_flow(
            proto, net::Endpoint{kSpeaker, net::Port{next_port++}},
            net::Endpoint{dst, net::Port{443}}, advance());
        flows.push_back(f);
        break;
      }
      case 1: {  // DNS update (sometimes moving the AVS IP)
        if (rng() % 2) {
          w.dns_answer(trace::kDomainAvs, rng() % 2 ? kAvsIp : kAvsIp2,
                       advance());
        } else {
          w.dns_answer(trace::kDomainGoogle, kGoogleIp, advance());
        }
        break;
      }
      case 2: {  // establishment/signature burst on a fresh flow
        if (flows.empty()) break;
        const int f = flows[rng() % flows.size()];
        const auto& sig =
            rng() % 2 ? kAltSignature : guard::GuardBox::avs_signature();
        const std::size_t n = 1 + rng() % sig.size();
        for (std::size_t i = 0; i < n; ++i) {
          w.tls_record(f, true, net::TlsContentType::kApplicationData, sig[i],
                       at_ms(t_ms + static_cast<std::int64_t>(i)));
        }
        t_ms += static_cast<std::int64_t>(n);
        break;
      }
      case 3: {  // fault annotation
        w.fault(static_cast<std::uint8_t>(rng() % (trace::kMaxFaultCode + 1)),
                rng() % 1000, advance());
        break;
      }
      default: {  // a burst of data records
        if (flows.empty()) break;
        const int f = flows[rng() % flows.size()];
        const int burst = 1 + static_cast<int>(rng() % 8);
        for (int k = 0; k < burst; ++k) {
          const bool up = rng() % 4 != 0;
          const std::uint32_t len = pick(kLenPool);
          if (rng() % 5 == 0) {
            w.datagram(f, up, len, advance());
          } else {
            w.tls_record(f, up, net::TlsContentType::kApplicationData, len,
                         advance());
          }
        }
        break;
      }
    }
  }
  out.bytes = w.finish();
  return out;
}

void expect_equal_results(const trace::ReplayResult& want,
                          const trace::ReplayResult& got,
                          const std::string& context) {
  ASSERT_EQ(want.spikes.size(), got.spikes.size()) << context;
  for (std::size_t i = 0; i < want.spikes.size(); ++i) {
    const trace::ReplaySpike& a = want.spikes[i];
    const trace::ReplaySpike& b = got.spikes[i];
    ASSERT_EQ(a.flow_id, b.flow_id) << context << " spike " << i;
    ASSERT_EQ(a.udp, b.udp) << context << " spike " << i;
    ASSERT_EQ(a.start, b.start) << context << " spike " << i;
    ASSERT_EQ(a.prefix, b.prefix) << context << " spike " << i;
    ASSERT_EQ(a.cls, b.cls) << context << " spike " << i;
    ASSERT_EQ(a.rule, b.rule) << context << " spike " << i;
  }
  ASSERT_EQ(want.frames, got.frames) << context;
  ASSERT_EQ(want.flows, got.flows) << context;
  ASSERT_EQ(want.avs_flows, got.avs_flows) << context;
  ASSERT_EQ(want.google_flows, got.google_flows) << context;
  ASSERT_EQ(want.unmonitored_flows, got.unmonitored_flows) << context;
  ASSERT_EQ(want.tls_records, got.tls_records) << context;
  ASSERT_EQ(want.datagrams, got.datagrams) << context;
  ASSERT_EQ(want.dns_answers, got.dns_answers) << context;
  ASSERT_EQ(want.fault_frames, got.fault_frames) << context;
  ASSERT_EQ(want.heartbeats, got.heartbeats) << context;
  ASSERT_EQ(want.avs_dns_updates, got.avs_dns_updates) << context;
  ASSERT_EQ(want.avs_signature_updates, got.avs_signature_updates) << context;
  ASSERT_EQ(want.commands, got.commands) << context;
  ASSERT_EQ(want.responses, got.responses) << context;
  ASSERT_EQ(want.unknowns, got.unknowns) << context;
  ASSERT_EQ(want.end_time, got.end_time) << context;
}

std::vector<std::string> golden_corpus() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(VG_TRACE_DATA_DIR)) {
    if (entry.path().extension() == ".vgt") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// --- BatchDecoder vs TraceReader -------------------------------------------

void expect_decoder_parity(const std::vector<std::uint8_t>& bytes,
                           const std::string& context) {
  const TraceReader reader = TraceReader::parse(bytes);
  const ColumnBatch batch = BatchDecoder::decode(
      std::span<const std::uint8_t>{bytes.data(), bytes.size()});

  ASSERT_EQ(batch.size(), reader.records().size()) << context;
  ASSERT_EQ(batch.meta.scenario, reader.meta().scenario) << context;
  ASSERT_EQ(batch.meta.seed, reader.meta().seed) << context;
  ASSERT_EQ(batch.meta.avs_domain, reader.meta().avs_domain) << context;
  ASSERT_EQ(batch.meta.google_domain, reader.meta().google_domain) << context;
  ASSERT_EQ(batch.flows.size(), reader.flows().size()) << context;
  for (std::size_t i = 0; i < batch.flows.size(); ++i) {
    ASSERT_EQ(batch.flows[i].protocol, reader.flows()[i].protocol) << context;
    ASSERT_EQ(batch.flows[i].speaker, reader.flows()[i].speaker) << context;
    ASSERT_EQ(batch.flows[i].server, reader.flows()[i].server) << context;
    ASSERT_EQ(batch.flows[i].first_seen, reader.flows()[i].first_seen)
        << context;
  }
  ASSERT_EQ(batch.end_time, reader.end_time()) << context;

  std::uint64_t tls = 0;
  std::uint64_t dgrams = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const trace::TraceRecord& want = reader.records()[i];
    const trace::TraceRecord got = batch.record(i);
    ASSERT_EQ(got.kind, want.kind) << context << " record " << i;
    ASSERT_EQ(got.when, want.when) << context << " record " << i;
    ASSERT_EQ(got.flow, want.flow) << context << " record " << i;
    ASSERT_EQ(got.upstream, want.upstream) << context << " record " << i;
    ASSERT_EQ(got.tls_type, want.tls_type) << context << " record " << i;
    ASSERT_EQ(got.length, want.length) << context << " record " << i;
    ASSERT_EQ(got.domain_code, want.domain_code) << context << " record " << i;
    ASSERT_EQ(got.dns_answer, want.dns_answer) << context << " record " << i;
    ASSERT_EQ(got.fault_code, want.fault_code) << context << " record " << i;
    ASSERT_EQ(got.fault_param, want.fault_param) << context << " record " << i;
    ASSERT_EQ(batch.rule_class[i], guard::rules::len_class(want.length))
        << context << " record " << i;
    tls += want.kind == FrameKind::kTlsRecord;
    dgrams += want.kind == FrameKind::kDatagram;
  }
  ASSERT_EQ(batch.tls_records, tls) << context;
  ASSERT_EQ(batch.datagrams, dgrams) << context;
}

TEST(BatchDecoder, VarintBoundaryLengthsAndFaults) {
  TraceWriter::Meta meta;
  meta.scenario = "boundaries";
  meta.seed = 7;
  TraceWriter w{meta};
  const int f = w.add_flow(net::Protocol::kTcp,
                           net::Endpoint{kSpeaker, net::Port{50001}},
                           net::Endpoint{kAvsIp, net::Port{443}}, at_ms(1));
  std::int64_t t = 2;
  for (std::uint32_t len : {127u, 128u, 16383u, 16384u, 0u, 0xFFFFFFFFu}) {
    w.tls_record(f, true, net::TlsContentType::kApplicationData, len,
                 at_ms(t++));
    w.datagram(f, false, len, at_ms(t++));
  }
  w.fault(0, 127, at_ms(t++));
  w.fault(trace::kMaxFaultCode, 16384, at_ms(t++));
  expect_decoder_parity(w.finish(), "boundaries");
}

/// Decoder parity plus batch-vs-oracle replay parity in one shot, for the
/// hand-built boundary traces below. Returns the oracle result so callers
/// can pin absolute expectations on top of the equivalence.
trace::ReplayResult boundary_parity(const std::vector<std::uint8_t>& bytes,
                                    const std::string& context) {
  expect_decoder_parity(bytes, context);
  const trace::ReplayResult want =
      trace::Replayer{}.run(TraceReader::parse(bytes));
  const ColumnBatch batch = BatchDecoder::decode(
      std::span<const std::uint8_t>{bytes.data(), bytes.size()});
  trace::BatchReplayResult result;
  BatchReplayer{}.run(batch, result);
  expect_equal_results(want, result.to_replay_result(), context);
  return want;
}

TEST(BatchDecoder, EmptyTraceDecodesAndReplaysToNothing) {
  TraceWriter::Meta meta;
  meta.scenario = "empty";
  meta.seed = 3;
  const std::vector<std::uint8_t> bytes = TraceWriter{meta}.finish();

  const ColumnBatch batch = BatchDecoder::decode(
      std::span<const std::uint8_t>{bytes.data(), bytes.size()});
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_TRUE(batch.flows.empty());
  EXPECT_TRUE(batch.attention.empty());
  // The counting-sort prefix sums must still be well-formed over zero flows.
  ASSERT_EQ(batch.up_offsets.size(), 1u);
  EXPECT_EQ(batch.up_offsets[0], 0u);

  const trace::ReplayResult r = boundary_parity(bytes, "empty");
  EXPECT_EQ(r.frames, 0u);
  EXPECT_EQ(r.flows, 0u);
  EXPECT_TRUE(r.spikes.empty());
}

TEST(BatchDecoder, SingleRecordTraces) {
  {  // Just one flow-begin frame: a flow with no traffic at all.
    TraceWriter::Meta meta;
    meta.scenario = "one-flow";
    meta.seed = 4;
    TraceWriter w{meta};
    w.add_flow(net::Protocol::kTcp, net::Endpoint{kSpeaker, net::Port{50001}},
               net::Endpoint{kAvsIp, net::Port{443}}, at_ms(5));
    const std::vector<std::uint8_t> bytes = w.finish();

    const ColumnBatch batch = BatchDecoder::decode(
        std::span<const std::uint8_t>{bytes.data(), bytes.size()});
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_EQ(batch.flows.size(), 1u);
    ASSERT_EQ(batch.flow_begin_at.size(), 1u);
    EXPECT_EQ(batch.flow_begin_at[0], 0u);
    ASSERT_EQ(batch.up_offsets.size(), 2u);
    EXPECT_EQ(batch.up_offsets[1], 0u);  // no upstream data records

    const trace::ReplayResult r = boundary_parity(bytes, "one-flow");
    EXPECT_EQ(r.frames, 1u);
    EXPECT_EQ(r.flows, 1u);
    EXPECT_TRUE(r.spikes.empty());
  }
  {  // Just one DNS answer: no flows anywhere in the trace.
    TraceWriter::Meta meta;
    meta.scenario = "one-dns";
    meta.seed = 5;
    TraceWriter w{meta};
    w.dns_answer(trace::kDomainAvs, kAvsIp, at_ms(5));
    const std::vector<std::uint8_t> bytes = w.finish();

    const ColumnBatch batch = BatchDecoder::decode(
        std::span<const std::uint8_t>{bytes.data(), bytes.size()});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_TRUE(batch.flows.empty());
    ASSERT_EQ(batch.dns.size(), 1u);
    EXPECT_EQ(batch.dns[0].index, 0u);

    const trace::ReplayResult r = boundary_parity(bytes, "one-dns");
    EXPECT_EQ(r.dns_answers, 1u);
    EXPECT_EQ(r.avs_dns_updates, 1u);
  }
}

TEST(BatchDecoder, FinalFrameFaultEndsTheTraceCleanly) {
  // A spike is still accumulating when the last frame arrives, and that last
  // frame is a fault annotation: flowless, skipped by the attention mask,
  // yet it defines end_time and the spike must still finalize at end of
  // trace exactly like the oracle.
  TraceWriter::Meta meta;
  meta.scenario = "tail-fault";
  meta.seed = 6;
  TraceWriter w{meta};
  w.dns_answer(trace::kDomainAvs, kAvsIp, at_ms(1));
  const int f = w.add_flow(net::Protocol::kTcp,
                           net::Endpoint{kSpeaker, net::Port{50002}},
                           net::Endpoint{kAvsIp, net::Port{443}}, at_ms(2));
  // Past the 1.5 s establishment window, so the records open a spike rather
  // than feeding the signature learner.
  w.tls_record(f, true, net::TlsContentType::kApplicationData, 75,
               at_ms(2000));
  w.tls_record(f, true, net::TlsContentType::kApplicationData, 77,
               at_ms(2001));
  w.fault(0, 1, at_ms(2002));
  const std::vector<std::uint8_t> bytes = w.finish();

  const ColumnBatch batch = BatchDecoder::decode(
      std::span<const std::uint8_t>{bytes.data(), bytes.size()});
  ASSERT_EQ(batch.faults.size(), 1u);
  EXPECT_EQ(batch.faults[0].index, batch.size() - 1);
  // The tail fault contributes tallies but no recognition work.
  EXPECT_EQ((batch.attention.back() >> ((batch.size() - 1) % 64)) & 1, 0u);
  EXPECT_EQ(batch.end_time, at_ms(2002));

  const trace::ReplayResult r = boundary_parity(bytes, "tail-fault");
  EXPECT_EQ(r.fault_frames, 1u);
  EXPECT_EQ(r.end_time, at_ms(2002));
  ASSERT_EQ(r.spikes.size(), 1u);
}

TEST(BatchDecoder, MatchesTraceReaderOnRandomTraces) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    expect_decoder_parity(random_trace(seed).bytes,
                          "seed " + std::to_string(seed));
  }
}

TEST(BatchDecoder, RejectsCorruptionLikeTraceReader) {
  const std::vector<std::uint8_t> good = random_trace(99).bytes;
  // Flip one byte at a time across a sample of offsets: wherever the strict
  // reader objects, the decoder must object too (and vice versa).
  for (std::size_t pos = 0; pos < good.size(); pos += 7) {
    std::vector<std::uint8_t> bad = good;
    bad[pos] ^= 0x41;
    bool reader_throws = false;
    bool decoder_throws = false;
    try {
      (void)TraceReader::parse(bad);
    } catch (const trace::TraceError&) {
      reader_throws = true;
    }
    try {
      (void)BatchDecoder::decode(
          std::span<const std::uint8_t>{bad.data(), bad.size()});
    } catch (const trace::TraceError&) {
      decoder_throws = true;
    }
    ASSERT_EQ(reader_throws, decoder_throws) << "offset " << pos;
  }
}

// --- feed_nonrule vs feed ---------------------------------------------------

TEST(SpikeClassifier, FeedNonruleMatchesFeedForNonAlphabetLengths) {
  std::mt19937_64 rng{2024};
  for (int trial = 0; trial < 20000; ++trial) {
    guard::SpikeClassifier via_feed;
    guard::SpikeClassifier via_fast;
    const int n = 1 + static_cast<int>(rng() % 10);
    for (int k = 0; k < n; ++k) {
      const std::uint32_t len = static_cast<std::uint32_t>(rng() % 1000);
      const auto a = via_feed.feed(len);
      const auto b = guard::rules::len_class(len) != 0
                         ? via_fast.feed(len)
                         : via_fast.feed_nonrule(len);
      ASSERT_EQ(a, b) << "trial " << trial << " record " << k;
    }
    ASSERT_EQ(via_feed.finalize(), via_fast.finalize()) << "trial " << trial;
    ASSERT_EQ(via_feed.matched_rule(), via_fast.matched_rule())
        << "trial " << trial;
  }
}

// --- BatchReplayer vs Replayer ---------------------------------------------

TEST(BatchReplayer, MatchesOracleOnGoldenCorpus) {
  const std::vector<std::string> corpus = golden_corpus();
  ASSERT_FALSE(corpus.empty());
  BatchReplayer batch_replayer;
  for (const std::string& path : corpus) {
    const trace::ReplayResult want =
        trace::Replayer{}.run(TraceReader::load(path));
    const ColumnBatch batch = BatchDecoder::load(path);
    const trace::ReplayResult got =
        batch_replayer.run(batch).to_replay_result();
    expect_equal_results(want, got, path);
  }
}

TEST(BatchReplayer, MatchesOracleOnRandomTraces) {
  // One replayer + batch reused throughout, as the bench and `vgtrace` use
  // them: state leaking between runs would show up as divergence here.
  BatchReplayer monitor_replayer;
  ColumnBatch batch;
  trace::BatchReplayResult result;
  for (std::uint64_t seed = 0; seed < 50000; ++seed) {
    const RandomTrace rt = random_trace(seed);
    const trace::ReplayResult want =
        trace::Replayer{rt.opts}.run(TraceReader::parse(rt.bytes));
    BatchDecoder::decode(
        std::span<const std::uint8_t>{rt.bytes.data(), rt.bytes.size()},
        batch);
    if (rt.opts.mode == guard::GuardMode::kMonitor) {
      monitor_replayer.run(batch, result);
    } else {
      BatchReplayer{rt.opts}.run(batch, result);
    }
    expect_equal_results(want, result.to_replay_result(),
                         "seed " + std::to_string(seed));
  }
}

// --- mmap vs fread input ----------------------------------------------------

TEST(TraceBytes, MappedAndBufferedReadsAgree) {
  for (const std::string& path : golden_corpus()) {
    const TraceBytes mapped = TraceBytes::from_file(path);
    const TraceBytes buffered = TraceBytes::buffered_from_file(path);
    ASSERT_EQ(mapped.size(), buffered.size()) << path;
    ASSERT_TRUE(std::equal(mapped.data(), mapped.data() + mapped.size(),
                           buffered.data()))
        << path;

    const trace::ReplayResult via_map =
        trace::Replayer{}.run(TraceReader::parse(mapped.span()));
    const trace::ReplayResult via_buf =
        trace::Replayer{}.run(TraceReader::parse(buffered.span()));
    expect_equal_results(via_map, via_buf, path);
  }
}

TEST(TraceBytes, OpenErrorNamesPathAndReason) {
  const std::string path = "/nonexistent-dir-vg/test.vgt";
  try {
    (void)TraceReader::load(path);
    FAIL() << "expected TraceIoError";
  } catch (const trace::TraceIoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("No such file"), std::string::npos) << msg;
  }
}

}  // namespace
