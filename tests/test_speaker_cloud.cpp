#include <gtest/gtest.h>

#include "cloud/CloudFarm.h"
#include "speaker/EchoDot.h"
#include "speaker/GoogleHomeMini.h"

namespace vg {
namespace {

using net::IpAddress;

cloud::CloudFarm::Options no_migration() {
  cloud::CloudFarm::Options o;
  o.avs_migration_mean = sim::Duration{0};
  return o;
}

/// Speaker connected straight to the router (no guard box).
struct CloudWorld {
  sim::Simulation sim{7};
  net::Network net{sim};
  net::Router router{"router"};
  cloud::CloudFarm farm{net, router, no_migration()};
  net::Host speaker_host{net, "speaker", IpAddress(192, 168, 1, 200)};

  CloudWorld() {
    net::Link& l = net.add_link(speaker_host, router, sim::milliseconds(3));
    speaker_host.attach(l);
    router.add_route(speaker_host.ip(), l);
  }

  speaker::CommandSpec cmd(std::uint64_t id, int words = 6) {
    speaker::CommandSpec c;
    c.id = id;
    c.text = "test command";
    c.words = words;
    return c;
  }
};

TEST(EchoDot, BootsAndHeartbeats) {
  CloudWorld w;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(95));
  EXPECT_TRUE(echo.connected());
  EXPECT_EQ(echo.current_avs_ip(), w.farm.current_avs_ip());
  // ~3 heartbeat intervals passed.
  EXPECT_GE(w.farm.avs_app(0).heartbeats_received(), 2u);
  EXPECT_EQ(w.farm.avs_app(0).sessions_opened(), 1u);
  EXPECT_EQ(w.farm.total_sequence_violations(), 0u);
}

TEST(EchoDot, CommandExecutesAndGetsResponse) {
  CloudWorld w;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));

  echo.hear_command(w.cmd(1, 6));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(60));

  const auto executed = w.farm.all_executed();
  ASSERT_EQ(executed.size(), 1u);
  EXPECT_EQ(executed[0].command_tag, "voice-cmd-end:1");

  ASSERT_EQ(echo.interactions().size(), 1u);
  const auto& res = echo.interactions()[0];
  EXPECT_TRUE(res.response_received);
  EXPECT_FALSE(res.connection_error);
  EXPECT_FALSE(res.timed_out);
  // The response started shortly after the command upload finished.
  EXPECT_GT(res.response_start, res.command_end);
  EXPECT_LT((res.response_start - res.command_end).seconds(), 2.0);
}

TEST(EchoDot, OverlappingCommandIgnored) {
  CloudWorld w;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  echo.hear_command(w.cmd(1));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(12));
  echo.hear_command(w.cmd(2));  // mid-interaction: ignored
  w.sim.run_until(sim::TimePoint{} + sim::seconds(80));
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
}

TEST(EchoDot, ReconnectsAfterAvsMigration) {
  CloudWorld w;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  const net::IpAddress before = echo.current_avs_ip();
  w.farm.migrate_avs_now();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(30));
  EXPECT_TRUE(echo.connected());
  EXPECT_NE(echo.current_avs_ip(), before);
  EXPECT_EQ(echo.current_avs_ip(), w.farm.current_avs_ip());
  EXPECT_GE(echo.reconnects(), 1u);

  // Commands still work on the new session.
  echo.hear_command(w.cmd(5));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(90));
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
}

TEST(EchoDot, SomeReconnectsSkipDns) {
  CloudWorld w;
  speaker::EchoDotModel::Options opts;
  opts.dns_on_reconnect_prob = 0.0;  // always the DNS-less path
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }, opts};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  w.farm.migrate_avs_now();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(30));
  EXPECT_TRUE(echo.connected());
  EXPECT_GE(echo.dnsless_reconnects(), 1u);
}

TEST(AvsServer, KillsSessionOnRecordSequenceGap) {
  CloudWorld w;
  // A raw client that skips a TLS sequence number mid-stream.
  bool closed = false;
  net::TcpCallbacks cbs;
  cbs.on_closed = [&](net::TcpCloseReason) { closed = true; };
  net::TcpConnection& c = w.speaker_host.tcp().connect(
      net::Endpoint{w.farm.current_avs_ip(), 443}, std::move(cbs));
  auto send = [&c](std::uint64_t seq) {
    net::TlsRecord r;
    r.length = 100;
    r.tls_seq = seq;
    r.tag = "data";
    c.send_record(r);
  };
  send(0);
  send(1);
  send(3);  // gap: 2 was "dropped"
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_EQ(w.farm.avs_app(0).sequence_violations(), 1u);
  EXPECT_EQ(w.farm.avs_app(0).sessions_killed(), 1u);
  EXPECT_TRUE(closed);
}

TEST(AvsServer, NoCommandExecutionAfterGap) {
  CloudWorld w;
  net::TcpConnection& c = w.speaker_host.tcp().connect(
      net::Endpoint{w.farm.current_avs_ip(), 443}, net::TcpCallbacks{});
  auto send = [&c](std::uint64_t seq, std::string_view tag) {
    net::TlsRecord r;
    r.length = 100;
    r.tls_seq = seq;
    r.tag = tag;
    c.send_record(r);
  };
  send(0, "data");
  send(2, "voice-cmd-end:99");  // arrives after a gap: must not execute
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  EXPECT_TRUE(w.farm.all_executed().empty());
}

TEST(GoogleHomeMini, TcpInteractionExecutes) {
  CloudWorld w;
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 0.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(1, 7));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(60));
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  EXPECT_EQ(ghm.tcp_interactions(), 1u);
  ASSERT_EQ(ghm.interactions().size(), 1u);
  EXPECT_TRUE(ghm.interactions()[0].response_received);
  EXPECT_EQ(w.farm.google_app().tcp_sessions(), 1u);
}

TEST(GoogleHomeMini, QuicInteractionExecutes) {
  CloudWorld w;
  speaker::GoogleHomeMiniModel::Options opts;
  opts.quic_probability = 1.0;
  speaker::GoogleHomeMiniModel ghm{w.speaker_host, w.farm.dns_endpoint(), opts};
  ghm.power_on();
  ghm.hear_command(w.cmd(1, 7));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(60));
  EXPECT_EQ(w.farm.all_executed().size(), 1u);
  EXPECT_EQ(ghm.quic_interactions(), 1u);
  ASSERT_EQ(ghm.interactions().size(), 1u);
  EXPECT_TRUE(ghm.interactions()[0].response_received);
  EXPECT_EQ(w.farm.google_app().quic_sessions(), 1u);
}

TEST(GoogleCloud, QuicGapClosesConnection) {
  CloudWorld w;
  const net::Endpoint local{w.speaker_host.ip(), 50000};
  const net::Endpoint google{w.farm.google_ip(), 443};
  bool got_close = false;
  w.speaker_host.udp().bind(50000, [&](const net::Packet& p) {
    for (const auto& r : p.records) {
      if (r.tag == "quic-connection-close") got_close = true;
    }
  });
  auto send = [&](std::uint64_t seq, std::string_view tag) {
    net::TlsRecord r;
    r.length = 500;
    r.tls_seq = seq;
    r.tag = tag;
    w.speaker_host.udp().send_quic(local, google, {std::move(r)});
  };
  send(0, "quic-setup");
  send(2, "voice-cmd-end:1");  // gap
  w.sim.run_until(sim::TimePoint{} + sim::seconds(5));
  EXPECT_TRUE(got_close);
  EXPECT_EQ(w.farm.google_app().sequence_violations(), 1u);
  EXPECT_TRUE(w.farm.all_executed().empty());
}

TEST(EchoDot, ResponseSegmentsProducePhase2Traffic) {
  // The response phase emits upstream telemetry spikes whose prefixes match
  // the p-77/p-33 rule — verified at the packet level via an observer host.
  CloudWorld w;
  speaker::EchoDotModel echo{w.speaker_host, w.farm.dns_endpoint(),
                             [&w] { return w.farm.current_avs_ip(); }};
  echo.power_on();
  w.sim.run_until(sim::TimePoint{} + sim::seconds(10));
  echo.hear_command(w.cmd(1, 8));
  w.sim.run_until(sim::TimePoint{} + sim::seconds(90));
  ASSERT_FALSE(echo.interactions().empty());
  EXPECT_TRUE(echo.interactions()[0].response_received);
}

}  // namespace
}  // namespace vg
