#include <gtest/gtest.h>

#include "home/MobileDevice.h"
#include "home/MotionSensor.h"
#include "home/Person.h"
#include "home/Testbed.h"
#include "voiceguard/FloorTracker.h"

namespace vg::guard {
namespace {

constexpr double kStairSpeed = 0.45;

struct FloorTrackerFixture : ::testing::Test {
  sim::Simulation sim{77};
  home::Testbed tb = home::Testbed::two_floor_house();
  radio::BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  home::Person owner{sim, "owner", tb.location(1).pos};
  home::MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "phone",
                           [this] { return owner.position(); }};
  FloorTracker tracker{sim, phone, beacon, /*speaker_floor=*/0};

  radio::Vec3 stair_bottom = tb.location(42).pos;
  radio::Vec3 stair_top = tb.location(48).pos;

  /// Records one trace while `start_walk` drives the owner; returns the fit.
  std::pair<TraceClass, analysis::LineFit> capture(
      const std::function<void()>& start_walk) {
    start_walk();
    TraceClass cls{};
    analysis::LineFit fit{};
    bool done = false;
    tracker.record_trace([&](TraceClass c, analysis::LineFit f) {
      cls = c;
      fit = f;
      done = true;
    });
    while (!done && sim.pending_events() > 0) sim.step(1);
    EXPECT_TRUE(done);
    return {cls, fit};
  }

  void train(int per_class = 6) {
    auto& rng = sim.rng("train");
    for (int k = 0; k < per_class; ++k) {
      owner.teleport(stair_bottom);
      auto [c1, f1] = capture([&] { owner.walk_to(stair_top, kStairSpeed); });
      tracker.add_training_fit(TraceClass::kUp, f1.slope, f1.intercept);

      owner.teleport(stair_top);
      auto [c2, f2] = capture([&] { owner.walk_to(stair_bottom, kStairSpeed); });
      tracker.add_training_fit(TraceClass::kDown, f2.slope, f2.intercept);

      for (const char* room : {"kitchen", "living-room", "bedroom-1"}) {
        const auto center = radio::Vec3{
            tb.plan().room_by_name(room)->bounds.center().x,
            tb.plan().room_by_name(room)->bounds.center().y,
            tb.plan().device_height(tb.plan().room_by_name(room)->floor)};
        owner.teleport(center);
        auto [c3, f3] = capture([&] {
          std::vector<radio::Vec3> wiggle;
          for (int s = 0; s < 6; ++s) {
            wiggle.push_back({center.x + rng.uniform(-0.9, 0.9),
                              center.y + rng.uniform(-0.9, 0.9), center.z});
          }
          owner.follow_path(std::move(wiggle), 0.7);
        });
        tracker.add_training_fit(TraceClass::kRoute1, f3.slope, f3.intercept);
      }

      owner.teleport(tb.location(21).pos);
      auto [c4, f4] =
          capture([&] { owner.walk_to(tb.location(37).pos, 0.7); });
      tracker.add_training_fit(TraceClass::kRoute2, f4.slope, f4.intercept);

      owner.teleport(tb.location(48).pos);
      auto [c5, f5] =
          capture([&] { owner.walk_to(tb.location(59).pos, 1.0); });
      tracker.add_training_fit(TraceClass::kRoute3, f5.slope, f5.intercept);
    }
    tracker.finalize_training();
  }
};

TEST_F(FloorTrackerFixture, TrainingRequiresBothKinds) {
  tracker.add_training_fit(TraceClass::kRoute1, 0.05, -5);
  EXPECT_THROW(tracker.finalize_training(), std::logic_error);
  tracker.add_training_fit(TraceClass::kUp, -1.2, -11);
  EXPECT_NO_THROW(tracker.finalize_training());
  EXPECT_TRUE(tracker.trained());
}

TEST_F(FloorTrackerFixture, UpTracesHaveSteepNegativeSlope) {
  owner.teleport(stair_bottom);
  auto [cls, fit] = capture([&] { owner.walk_to(stair_top, kStairSpeed); });
  EXPECT_LT(fit.slope, -0.4);
  (void)cls;
}

TEST_F(FloorTrackerFixture, DownTracesHaveSteepPositiveSlope) {
  owner.teleport(stair_top);
  auto [cls, fit] = capture([&] { owner.walk_to(stair_bottom, kStairSpeed); });
  EXPECT_GT(fit.slope, 0.4);
  (void)cls;
}

TEST_F(FloorTrackerFixture, InRoomMovementHasFlatSlope) {
  owner.teleport(tb.location(33).pos);
  auto [cls, fit] = capture([&] {
    owner.follow_path({tb.location(34).pos, tb.location(33).pos,
                       tb.location(34).pos, tb.location(33).pos},
                      0.6);
  });
  EXPECT_LT(std::abs(fit.slope), 0.35);
  (void)cls;
}

TEST_F(FloorTrackerFixture, TrainedClassifierSeparatesStairsFromRoutes) {
  train();
  auto& rng = sim.rng("verify");
  int errors = 0, total = 0;

  // What matters for the floor level is Up/Down vs everything else: a missed
  // stair transition or a route mistaken for a stair transition corrupts the
  // level; Route-1/2/3 confusion among themselves is harmless.
  auto check = [&](TraceClass expected, const std::function<void()>& walk,
                   radio::Vec3 start) {
    owner.teleport(start);
    auto [cls, fit] = capture(walk);
    (void)fit;
    ++total;
    const bool expected_stairs =
        expected == TraceClass::kUp || expected == TraceClass::kDown;
    if (expected_stairs) {
      if (cls != expected) ++errors;
    } else {
      if (cls == TraceClass::kUp || cls == TraceClass::kDown) ++errors;
    }
  };

  for (int k = 0; k < 5; ++k) {
    check(TraceClass::kUp, [&] { owner.walk_to(stair_top, kStairSpeed); },
          stair_bottom);
    check(TraceClass::kDown, [&] { owner.walk_to(stair_bottom, kStairSpeed); },
          stair_top);
    const auto center = tb.location(33).pos;
    check(TraceClass::kRoute1,
          [&] {
            std::vector<radio::Vec3> wiggle;
            for (int s = 0; s < 6; ++s) {
              wiggle.push_back({center.x + rng.uniform(-0.9, 0.9),
                                center.y + rng.uniform(-0.9, 0.9), center.z});
            }
            owner.follow_path(std::move(wiggle), 0.7);
          },
          center);
    check(TraceClass::kRoute2, [&] { owner.walk_to(tb.location(37).pos, 0.7); },
          tb.location(21).pos);
    check(TraceClass::kRoute3, [&] { owner.walk_to(tb.location(59).pos, 1.0); },
          tb.location(48).pos);
  }
  // Fig. 10's claim: stair transitions separate from the confusable routes.
  EXPECT_LE(errors, 2) << errors << "/" << total;
}

TEST_F(FloorTrackerFixture, UpDownUpdatesFloorLevel) {
  train();
  EXPECT_EQ(tracker.current_level(), 0);
  EXPECT_TRUE(tracker.owner_on_speaker_floor());

  owner.teleport(stair_bottom);
  bool done = false;
  owner.walk_to(stair_top, kStairSpeed);
  tracker.record_trace([&](TraceClass c, analysis::LineFit) {
    EXPECT_EQ(c, TraceClass::kUp);
    tracker.set_level(c == TraceClass::kUp ? 1 : 0);
    done = true;
  });
  while (!done && sim.pending_events() > 0) sim.step(1);
  EXPECT_FALSE(tracker.owner_on_speaker_floor());
}

TEST_F(FloorTrackerFixture, MotionSensorDrivesTracker) {
  train();
  home::MotionSensor sensor{sim, tb.plan().stairs()->region};
  sensor.watch(owner);
  sensor.start();
  tracker.attach(sensor);

  // Owner walks from the living room through the stairs to the landing.
  owner.teleport(tb.location(10).pos);
  bool arrived = false;
  owner.follow_path({stair_bottom}, 1.1, [&] {
    owner.walk_to(stair_top, kStairSpeed, [&] {
      owner.walk_to(tb.location(50).pos, 1.1, [&] { arrived = true; });
    });
  });
  while (!arrived && sim.pending_events() > 0) sim.step(1);
  // Let the triggered trace finish (8 s).
  sim.run_until(sim.now() + sim::seconds(10));

  EXPECT_GE(sensor.activations(), 1u);
  EXPECT_GE(tracker.traces_recorded(), 1u);
  EXPECT_EQ(tracker.current_level(), 1);
  EXPECT_FALSE(tracker.owner_on_speaker_floor());

  // And back down.
  bool back = false;
  owner.walk_to(stair_top, 1.1, [&] {
    owner.walk_to(stair_bottom, kStairSpeed, [&] {
      owner.walk_to(tb.location(10).pos, 1.1, [&] { back = true; });
    });
  });
  while (!back && sim.pending_events() > 0) sim.step(1);
  sim.run_until(sim.now() + sim::seconds(10));
  EXPECT_EQ(tracker.current_level(), 0);
  EXPECT_TRUE(tracker.owner_on_speaker_floor());
}

TEST_F(FloorTrackerFixture, UntrainedFallbackUsesSlopeSign) {
  EXPECT_EQ(tracker.classify(-1.5, -10), TraceClass::kUp);
  EXPECT_EQ(tracker.classify(1.5, -20), TraceClass::kDown);
  EXPECT_EQ(tracker.classify(0.05, -5), TraceClass::kRoute1);
}

}  // namespace
}  // namespace vg::guard
