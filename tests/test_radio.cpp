#include <gtest/gtest.h>

#include "home/Testbed.h"
#include "radio/Bluetooth.h"
#include "radio/FloorPlan.h"
#include "radio/Geometry.h"
#include "radio/Propagation.h"
#include "simcore/Simulation.h"

namespace vg::radio {
namespace {

TEST(Geometry, SegmentIntersection) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  // Touching endpoints count as intersecting.
  EXPECT_TRUE(segments_intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  // Collinear overlap.
  EXPECT_TRUE(segments_intersect({{0, 0}, {3, 0}}, {{1, 0}, {2, 0}}));
  // Collinear, disjoint.
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(Geometry, DistanceAndLerp) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  const Vec3 mid = lerp({0, 0, 0}, {2, 4, 6}, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 1.0);
  EXPECT_DOUBLE_EQ(mid.y, 2.0);
  EXPECT_DOUBLE_EQ(mid.z, 3.0);
}

TEST(Geometry, RectContains) {
  const Rect r{0, 0, 2, 3};
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({0, 0}));  // boundary included
  EXPECT_FALSE(r.contains({2.1, 1}));
}

FloorPlan simple_plan() {
  FloorPlan plan;
  plan.add_room(Room{"left", Rect{0, 0, 5, 5}, 0});
  plan.add_room(Room{"right", Rect{5, 0, 10, 5}, 0});
  plan.add_room(Room{"up", Rect{0, 0, 10, 5}, 1});
  // Dividing wall with a door gap at y in (3.5, 5).
  plan.add_wall(Wall{Segment{{5, 0}, {5, 3.5}}, 0, 6.0});
  return plan;
}

TEST(FloorPlan, RoomLookup) {
  const FloorPlan plan = simple_plan();
  ASSERT_NE(plan.room_at({1, 1}, 0), nullptr);
  EXPECT_EQ(plan.room_at({1, 1}, 0)->name, "left");
  EXPECT_EQ(plan.room_at({7, 1}, 0)->name, "right");
  EXPECT_EQ(plan.room_at({1, 1}, 1)->name, "up");
  EXPECT_EQ(plan.room_at({20, 20}, 0), nullptr);
  ASSERT_NE(plan.room_by_name("right"), nullptr);
  EXPECT_EQ(plan.room_by_name("nope"), nullptr);
}

TEST(FloorPlan, WallCrossingRespectsDoors) {
  const FloorPlan plan = simple_plan();
  // Path through the wall: attenuated.
  EXPECT_EQ(plan.walls_crossed({2, 2}, {8, 2}, 0), 1);
  // Path through the door gap: free.
  EXPECT_EQ(plan.walls_crossed({2, 4.5}, {8, 4.5}, 0), 0);
  EXPECT_TRUE(plan.line_of_sight({2, 4.5, 1.0}, {8, 4.5, 1.0}));
  EXPECT_FALSE(plan.line_of_sight({2, 2, 1.0}, {8, 2, 1.0}));
}

TEST(FloorPlan, CrossFloorIsNeverLineOfSight) {
  const FloorPlan plan = simple_plan();
  EXPECT_FALSE(plan.line_of_sight({2, 2, 1.0}, {2, 2, 4.0}));
}

TEST(FloorPlan, FloorOfHeights) {
  FloorPlan plan;
  plan.set_floor_height(2.8);
  EXPECT_EQ(plan.floor_of(1.1), 0);
  EXPECT_EQ(plan.floor_of(3.9), 1);
  EXPECT_DOUBLE_EQ(plan.device_height(0), 1.1);
  EXPECT_DOUBLE_EQ(plan.device_height(1), 3.9);
}

TEST(Propagation, MonotoneInDistance) {
  const FloorPlan plan = simple_plan();
  const PathLossParams p{};
  const Vec3 tx{1, 1, 0.8};
  double prev = 1e9;
  for (double d = 0.5; d < 9; d += 0.5) {
    const double r = mean_rssi(plan, p, tx, Vec3{1 + d, 1, 1.1});
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Propagation, WallsAttenuate) {
  const FloorPlan plan = simple_plan();
  const PathLossParams p{};
  const Vec3 tx{4, 2, 1.0};
  const double through_wall = mean_rssi(plan, p, tx, {6, 2, 1.0});
  // Crosses x=5 at y ≈ 4.2, inside the door gap (3.5, 5).
  const double through_door = mean_rssi(plan, p, tx, {5.2, 4.6, 1.0});
  // Same-ish distance, ~6 dB difference from the wall.
  EXPECT_LT(through_wall, through_door - 3.0);
}

TEST(Propagation, FloorsAttenuateContinuously) {
  const FloorPlan plan = simple_plan();
  const PathLossParams p{};
  const Vec3 tx{1, 1, 0.8};
  const double same = mean_rssi(plan, p, tx, {1, 1, 1.1});
  const double above = mean_rssi(plan, p, tx, {1, 1, 3.9});
  EXPECT_NEAR(same - above,
              p.floor_attenuation_db_per_m * (3.9 - 1.1) +
                  10 * p.exponent * (std::log10(3.1) - std::log10(0.3)),
              0.2);
}

TEST(Propagation, NearFieldClamped) {
  const FloorPlan plan = simple_plan();
  const PathLossParams p{};
  const Vec3 tx{1, 1, 1.0};
  EXPECT_DOUBLE_EQ(mean_rssi(plan, p, tx, {1, 1, 1.0}),
                   mean_rssi(plan, p, tx, {1.0 + p.min_distance_m / 2, 1, 1.0}));
}

TEST(Propagation, AveragingReducesSpread) {
  const FloorPlan plan = simple_plan();
  const PathLossParams p{};
  sim::Simulation sim{11};
  auto& rng = sim.rng("t");
  const Vec3 tx{1, 1, 0.8};
  const Vec3 rx{4, 4, 1.1};
  const double mean = mean_rssi(plan, p, tx, rx);

  double max_dev1 = 0, max_dev16 = 0;
  for (int i = 0; i < 200; ++i) {
    max_dev1 = std::max(max_dev1, std::abs(sample_rssi(plan, p, tx, rx, rng) - mean));
    max_dev16 =
        std::max(max_dev16, std::abs(averaged_rssi(plan, p, tx, rx, rng) - mean));
  }
  EXPECT_LT(max_dev16, max_dev1);
}

TEST(Bluetooth, ScannerQuantizesToIntegers) {
  const FloorPlan plan = simple_plan();
  sim::Simulation sim{5};
  BluetoothBeacon beacon{"spk", {1, 1, 0.8}};
  BluetoothScanner scanner{sim, plan, PathLossParams{}, "phone",
                           [] { return Vec3{3, 3, 1.1}; }};
  for (int i = 0; i < 20; ++i) {
    const double v = scanner.measure_now(beacon);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(Bluetooth, AsyncMeasureHasScanLatency) {
  const FloorPlan plan = simple_plan();
  sim::Simulation sim{5};
  BluetoothBeacon beacon{"spk", {1, 1, 0.8}};
  ScanParams sp;
  sp.min_latency = sim::milliseconds(200);
  sp.max_latency = sim::milliseconds(900);
  BluetoothScanner scanner{sim, plan, PathLossParams{}, "phone",
                           [] { return Vec3{3, 3, 1.1}; }, sp};
  sim::TimePoint done;
  scanner.measure(beacon, [&](double) { done = sim.now(); });
  sim.run_all();
  EXPECT_GE(done - sim::TimePoint{}, sim::milliseconds(200));
  EXPECT_LE(done - sim::TimePoint{}, sim::milliseconds(900));
}

TEST(Bluetooth, MeasurementTracksMovingCarrier) {
  const FloorPlan plan = simple_plan();
  sim::Simulation sim{5};
  BluetoothBeacon beacon{"spk", {1, 1, 0.8}};
  Vec3 pos{1.5, 1, 1.1};
  ScanParams quiet;
  quiet.quantize = false;
  PathLossParams noiseless{};
  noiseless.shadowing_sigma_db = 0;
  noiseless.orientation_spread_db = 0;
  BluetoothScanner scanner{sim, plan, noiseless, "phone",
                           [&pos]() { return pos; }, quiet};
  const double near = scanner.measure_now(beacon);
  pos = Vec3{8, 4, 1.1};
  const double far = scanner.measure_now(beacon);
  EXPECT_GT(near, far + 5);
}

}  // namespace
}  // namespace vg::radio
