/// The fault-injection subsystem in isolation: link fault windows (flap,
/// Gilbert-Elliott burst, latency spike), FCM degradation windows, device
/// no-response faults, and the FaultInjector's validation / boundary log.
/// The end-to-end chaos matrix lives in test_chaos.cpp.

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "faults/FaultInjector.h"
#include "home/Fcm.h"
#include "home/MobileDevice.h"
#include "home/Person.h"
#include "home/Testbed.h"
#include "voiceguard/Decision.h"
#include "workload/World.h"

namespace vg::faults {
namespace {

/// A bare link endpoint that records when each packet arrived.
struct RecorderNode : net::NetNode {
  sim::Simulation& sim;
  std::string id;
  std::vector<sim::TimePoint> arrivals;

  RecorderNode(sim::Simulation& s, std::string n) : sim(s), id(std::move(n)) {}
  void receive(net::Packet, net::Link&) override {
    arrivals.push_back(sim.now());
  }
  [[nodiscard]] std::string name() const override { return id; }
};

constexpr sim::TimePoint kEpoch{};

struct LinkFixture : ::testing::Test {
  sim::Simulation sim{11};
  net::Network net{sim};
  RecorderNode a{sim, "a"}, b{sim, "b"};
  net::Link& link = net.add_link(a, b, sim::milliseconds(10));

  void send_at(double t_s) {
    sim.at(kEpoch + sim::from_seconds(t_s), [this] {
      net::Packet p;
      link.send_from(a, std::move(p));
    });
  }
};

TEST_F(LinkFixture, FlapDropsExactlyInsideWindow) {
  // [start, end): the packet at 1.0 is the first casualty, the one at 3.0 the
  // first survivor.
  link.add_flap(kEpoch + sim::seconds(1), kEpoch + sim::seconds(3));
  for (double t : {0.5, 1.0, 2.0, 3.0, 3.5}) send_at(t);
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(link.dropped_packets(), 2u);
  EXPECT_EQ(link.flap_dropped(), 2u);
  EXPECT_EQ(link.burst_dropped(), 0u);
}

TEST_F(LinkFixture, LatencySpikeDelaysButPreservesFifo) {
  // +500 ms inside [1, 2) on a 10 ms link. The packet sent just after the
  // window must still arrive after the spiked one sent just before the edge:
  // the per-direction FIFO clamp forbids reordering at the boundary.
  link.add_latency_spike(kEpoch + sim::seconds(1), kEpoch + sim::seconds(2),
                         sim::milliseconds(500));
  send_at(0.9);   // normal: ~0.910
  send_at(1.0);   // spiked: ~1.510
  send_at(1.9);   // spiked: ~2.410
  send_at(1.95);  // spiked, behind the previous one
  send_at(2.0);   // normal again (~2.010) but clamped behind 2.410+
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 5u);
  for (std::size_t i = 1; i < b.arrivals.size(); ++i) {
    EXPECT_LE(b.arrivals[i - 1], b.arrivals[i]) << "reordered at " << i;
  }
  EXPECT_LT(b.arrivals[0].seconds(), 1.0);
  EXPECT_GE(b.arrivals[1].seconds(), 1.5);
  EXPECT_GE(b.arrivals[4], b.arrivals[3]);
  EXPECT_EQ(link.dropped_packets(), 0u);
}

TEST_F(LinkFixture, WindowValidationRejectsReversedBounds) {
  EXPECT_THROW(link.add_flap(kEpoch + sim::seconds(2), kEpoch + sim::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW(link.add_burst_loss(kEpoch + sim::seconds(2),
                                   kEpoch + sim::seconds(1), {}),
               std::invalid_argument);
  EXPECT_THROW(link.add_latency_spike(kEpoch + sim::seconds(2),
                                      kEpoch + sim::seconds(1),
                                      sim::milliseconds(100)),
               std::invalid_argument);
}

TEST(LinkBurst, GilbertElliottPatternIsSeedDeterministic) {
  // Two sims with the same seed must drop exactly the same packets: the burst
  // chain draws only from the dedicated "net.link.burst" stream.
  const auto run = [](std::uint64_t seed) {
    sim::Simulation sim{seed};
    net::Network net{sim};
    RecorderNode a{sim, "a"}, b{sim, "b"};
    net::Link& link = net.add_link(a, b, sim::milliseconds(10));
    net::GilbertElliott ge;
    ge.p_enter_bad = 0.4;
    ge.p_exit_bad = 0.3;
    link.add_burst_loss(kEpoch + sim::seconds(1), kEpoch + sim::seconds(60),
                        ge);
    for (int i = 0; i < 200; ++i) {
      sim.at(kEpoch + sim::from_seconds(1.05 + 0.25 * i), [&a, &link] {
        net::Packet p;
        link.send_from(a, std::move(p));
      });
    }
    sim.run_all();
    std::vector<double> times;
    times.reserve(b.arrivals.size());
    for (const auto t : b.arrivals) times.push_back(t.seconds());
    return std::pair{times, link.burst_dropped()};
  };

  const auto [times1, dropped1] = run(101);
  const auto [times2, dropped2] = run(101);
  EXPECT_EQ(times1, times2);
  EXPECT_EQ(dropped1, dropped2);
  // With p_enter_bad 0.4 / loss_bad 1.0 the window must eat a real share, but
  // never everything.
  EXPECT_GT(dropped1, 10u);
  EXPECT_LT(dropped1, 200u);
  EXPECT_EQ(times1.size() + dropped1, 200u);
}

TEST(FcmFault, DropWindowDropsThenRecovers) {
  sim::Simulation sim{5};
  home::FcmService fcm{sim};
  int got = 0;
  fcm.register_device("tok", [&](const std::string&) { ++got; });
  fcm.add_fault_window(sim.now(), sim.now() + sim::seconds(1), sim::Duration{},
                       /*drop_prob=*/1.0);
  fcm.push("tok", "in-window");
  sim.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fcm.pushes_dropped(), 1u);

  sim.run_until(kEpoch + sim::seconds(2));  // window over
  fcm.push("tok", "after-window");
  sim.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fcm.pushes_dropped(), 1u);
  EXPECT_EQ(fcm.pushes_sent(), 2u);
}

TEST(FcmFault, DelayWindowDefersDelivery) {
  sim::Simulation sim{6};
  home::FcmService fcm{sim};
  double delivered_at = -1.0;
  fcm.register_device("tok", [&](const std::string&) {
    delivered_at = sim.now().seconds();
  });
  fcm.add_fault_window(sim.now(), sim.now() + sim::seconds(10),
                       sim::seconds(3), /*drop_prob=*/0.0);
  fcm.push("tok", "slow");
  sim.run_all();
  // Sampled latency in [0.18, 5] plus the 3 s penalty.
  EXPECT_GE(delivered_at, 3.18);
  EXPECT_LE(delivered_at, 8.01);
  EXPECT_EQ(fcm.pushes_dropped(), 0u);
}

TEST(FcmFault, WindowValidationRejectsReversedBounds) {
  sim::Simulation sim{7};
  home::FcmService fcm{sim};
  EXPECT_THROW(fcm.add_fault_window(sim.now() + sim::seconds(1), sim.now(),
                                    sim::Duration{}, 0.0),
               std::invalid_argument);
}

TEST(DeviceFault, UnresponsiveDeviceTimesOutThenRecovers) {
  sim::Simulation sim{21};
  home::Testbed tb = home::Testbed::two_floor_house();
  radio::BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  home::FcmService fcm{sim};
  guard::RssiDecisionModule module{sim, fcm, beacon};
  const auto spk = tb.speaker_position(1);
  home::Person owner{sim, "owner",
                     {spk.x - 1.5, spk.y + 1.0, tb.plan().device_height(0)}};
  home::MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "phone",
                           [&] { return owner.position(); }};
  module.register_device(phone, -8.0);

  const auto query = [&] {
    bool done = false, verdict = false;
    module.query([&](bool legit) {
      verdict = legit;
      done = true;
    });
    while (!done && sim.pending_events() > 0) sim.step(1);
    EXPECT_TRUE(done);
    return verdict;
  };

  phone.set_responsive(false);
  EXPECT_FALSE(query());  // owner is right there, but the app is dead
  EXPECT_EQ(phone.ignored_requests(), 1u);
  ASSERT_EQ(module.history().size(), 1u);
  ASSERT_EQ(module.history()[0].reports.size(), 1u);
  EXPECT_TRUE(module.history()[0].reports[0].timed_out);

  phone.set_responsive(true);
  EXPECT_TRUE(query());
  EXPECT_EQ(phone.ignored_requests(), 1u);
}

TEST(FaultInjectorValidation, RejectsBadPlansBeforeInstallingAnything) {
  sim::Simulation sim{3};
  net::Network net{sim};
  RecorderNode a{sim, "a"}, b{sim, "b"};
  net::Link& lan = net.add_link(a, b, sim::milliseconds(2));
  home::FcmService fcm{sim};
  FaultInjector::Targets targets;
  targets.lan = &lan;
  targets.fcm = &fcm;
  FaultInjector inj{sim, targets};

  {  // References a link that is not wired.
    FaultPlan p;
    p.links.push_back({LinkFault::Where::kWan, LinkFault::Kind::kFlap,
                       sim::seconds(1), sim::seconds(1), {}, {}});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // Negative start.
    FaultPlan p;
    p.links.push_back({LinkFault::Where::kLan, LinkFault::Kind::kFlap,
                       sim::seconds(-1), sim::seconds(1), {}, {}});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // Negative latency spike.
    FaultPlan p;
    p.links.push_back({LinkFault::Where::kLan, LinkFault::Kind::kLatencySpike,
                       sim::seconds(1), sim::seconds(1), {},
                       sim::milliseconds(-5)});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // drop_prob out of [0, 1].
    FaultPlan p;
    p.fcm.push_back({sim::Duration{}, sim::seconds(1), sim::Duration{}, 1.5});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // Device index with no devices wired.
    FaultPlan p;
    p.devices.push_back({0, sim::seconds(1), sim::Duration{}});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // Cloud / guard targets missing.
    FaultPlan p;
    p.cloud.push_back({sim::seconds(1), sim::seconds(1), true});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
    p = FaultPlan{};
    p.restarts.push_back({sim::seconds(1)});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }

  // Validation rejected every plan before installing it: nothing fires.
  sim.run_all();
  EXPECT_EQ(inj.injected(), 0u);
  EXPECT_TRUE(inj.log().empty());
  EXPECT_EQ(lan.dropped_packets(), 0u);

  // And the empty plan is trivially valid.
  EXPECT_NO_THROW(inj.arm(FaultPlan{}));
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultInjectorValidation, RejectsOverlappingWindows) {
  sim::Simulation sim{4};
  net::Network net{sim};
  RecorderNode a{sim, "a"}, b{sim, "b"}, c{sim, "c"};
  net::Link& lan = net.add_link(a, b, sim::milliseconds(2));
  net::Link& wan = net.add_link(b, c, sim::milliseconds(10));
  home::FcmService fcm{sim};
  home::Testbed tb = home::Testbed::two_floor_house();
  home::Person owner{sim, "owner", {0, 0, tb.plan().device_height(0)}};
  home::MobileDevice dev{sim, tb.plan(), radio::PathLossParams{}, "phone",
                         [&] { return owner.position(); }};
  FaultInjector::Targets targets;
  targets.lan = &lan;
  targets.wan = &wan;
  targets.fcm = &fcm;
  targets.devices.push_back(&dev);
  FaultInjector inj{sim, targets};

  const auto flap = [](LinkFault::Where where, double start_s, double dur_s) {
    return LinkFault{where, LinkFault::Kind::kFlap, sim::from_seconds(start_s),
                     sim::from_seconds(dur_s), {}, {}};
  };

  {  // Two flaps on the same link colliding mid-window.
    FaultPlan p;
    p.links.push_back(flap(LinkFault::Where::kLan, 1, 5));
    p.links.push_back(flap(LinkFault::Where::kLan, 4, 5));
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // The same windows are fine when they sit on different links, or on the
    // same link as different fault kinds (a flap under a latency spike is a
    // meaningful scenario; two flaps double-toggle the link).
    FaultPlan p;
    p.links.push_back(flap(LinkFault::Where::kLan, 1, 5));
    p.links.push_back(flap(LinkFault::Where::kWan, 4, 5));
    p.links.push_back({LinkFault::Where::kLan, LinkFault::Kind::kLatencySpike,
                       sim::seconds(2), sim::seconds(6), {},
                       sim::milliseconds(100)});
    EXPECT_NO_THROW(inj.arm(p));
  }
  {  // Touching windows are half-open and therefore legal.
    FaultPlan p;
    p.links.push_back(flap(LinkFault::Where::kLan, 100, 2));
    p.links.push_back(flap(LinkFault::Where::kLan, 102, 2));
    EXPECT_NO_THROW(inj.arm(p));
  }
  {  // Overlapping FCM degradation windows.
    FaultPlan p;
    p.fcm.push_back({sim::seconds(1), sim::seconds(10), sim::Duration{}, 0.1});
    p.fcm.push_back({sim::seconds(5), sim::seconds(10), sim::Duration{}, 0.2});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // A device fault with duration 0 never recovers, so any later window on
    // the same device is unreachable.
    FaultPlan p;
    p.devices.push_back({0, sim::seconds(1), sim::Duration{}});
    p.devices.push_back({0, sim::seconds(50), sim::seconds(1)});
    EXPECT_THROW(inj.arm(p), std::invalid_argument);
  }
  {  // ...but an identical schedule on another timeline slot is fine once the
    // first fault has a finite window.
    FaultPlan p;
    p.devices.push_back({0, sim::seconds(1), sim::seconds(10)});
    p.devices.push_back({0, sim::seconds(50), sim::seconds(1)});
    EXPECT_NO_THROW(inj.arm(p));
  }

  // Nothing the validator rejected was installed.
  EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultInjectorLog, BoundariesFireInOrderAndReachTheObserver) {
  sim::Simulation sim{4};
  net::Network net{sim};
  RecorderNode a{sim, "a"}, b{sim, "b"};
  net::Link& lan = net.add_link(a, b, sim::milliseconds(2));
  home::FcmService fcm{sim};
  FaultInjector::Targets targets;
  targets.lan = &lan;
  targets.fcm = &fcm;
  FaultInjector inj{sim, targets};

  std::vector<FaultEvent> seen;
  inj.set_observer([&](const FaultEvent& ev) { seen.push_back(ev); });

  FaultPlan p;
  p.name = "ordered";
  p.links.push_back({LinkFault::Where::kLan, LinkFault::Kind::kFlap,
                     sim::seconds(1), sim::seconds(1), {}, {}});
  p.fcm.push_back(
      {sim::from_seconds(0.5), sim::from_seconds(2.5), sim::Duration{}, 0.25});
  inj.arm(p);
  sim.run_until(kEpoch + sim::seconds(5));

  ASSERT_EQ(inj.injected(), 4u);
  const auto& log = inj.log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].kind, FaultEvent::Kind::kFcmDegraded);
  EXPECT_EQ(log[0].param, 25u);  // drop_prob in percent
  EXPECT_EQ(log[1].kind, FaultEvent::Kind::kFlapStart);
  EXPECT_EQ(log[2].kind, FaultEvent::Kind::kFlapEnd);
  EXPECT_EQ(log[3].kind, FaultEvent::Kind::kFcmNormal);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].when, log[i].when);
  }
  ASSERT_EQ(seen.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(seen[i].kind, log[i].kind);
    EXPECT_EQ(seen[i].when, log[i].when);
  }
}

TEST(FaultInjectorLog, PlanTimesAreRelativeToArm) {
  sim::Simulation sim{8};
  net::Network net{sim};
  RecorderNode a{sim, "a"}, b{sim, "b"};
  net::Link& lan = net.add_link(a, b, sim::milliseconds(2));
  FaultInjector::Targets targets;
  targets.lan = &lan;
  FaultInjector inj{sim, targets};

  sim.run_until(kEpoch + sim::seconds(10));
  FaultPlan p;
  p.links.push_back({LinkFault::Where::kLan, LinkFault::Kind::kFlap,
                     sim::seconds(1), sim::seconds(1), {}, {}});
  inj.arm(p);  // flap is [11, 12) absolute

  for (double t : {10.5, 11.5, 12.5}) {
    sim.at(kEpoch + sim::from_seconds(t), [&a, &lan] {
      net::Packet pkt;
      lan.send_from(a, std::move(pkt));
    });
  }
  sim.run_all();
  EXPECT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(lan.flap_dropped(), 1u);
}

TEST(FaultNames, EveryKindHasAStableName) {
  for (int k = 0; k <= 12; ++k) {
    const char* name = to_string(static_cast<FaultEvent::Kind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string{name}.size(), 0u) << "kind " << k;
  }
  FaultPlan p;
  p.name = "describable";
  p.devices.push_back({0, sim::seconds(1), sim::Duration{}});
  EXPECT_NE(p.to_string().find("describable"), std::string::npos);
}

TEST(FaultInjectorWorld, GuardRestartAbortsFlowsAndSpeakerRecovers) {
  workload::WorldConfig cfg;
  cfg.testbed = workload::WorldConfig::TestbedKind::kApartment;
  cfg.owner_count = 1;
  cfg.seed = 77;
  workload::SmartHomeWorld world{cfg};
  world.calibrate();

  FaultInjector::Targets targets;
  targets.guard = &world.guard();
  FaultInjector inj{world.sim(), targets};
  FaultPlan p;
  p.name = "restart";
  p.restarts.push_back({sim::seconds(5)});
  p.may_break_connections = true;
  inj.arm(p);

  const sim::TimePoint t0 = world.sim().now();
  world.sim().run_until(t0 + sim::seconds(120));

  EXPECT_EQ(world.guard().restarts(), 1u);
  EXPECT_EQ(world.guard().held_outstanding(), 0u);
  ASSERT_EQ(inj.injected(), 1u);
  EXPECT_EQ(inj.log()[0].kind, FaultEvent::Kind::kGuardRestart);
  // The speaker's long-lived AVS session died with the proxy state and the
  // firmware reconnected on its own.
  ASSERT_NE(world.echo(), nullptr);
  EXPECT_GE(world.echo()->reconnects(), 1u);
}

TEST(FaultInjectorWorld, CloudOutageRefusesAndResetsSessions) {
  workload::WorldConfig cfg;
  cfg.testbed = workload::WorldConfig::TestbedKind::kApartment;
  cfg.owner_count = 1;
  cfg.seed = 78;
  workload::SmartHomeWorld world{cfg};
  world.calibrate();

  FaultInjector::Targets targets;
  targets.cloud = &world.cloud();
  FaultInjector inj{world.sim(), targets};
  FaultPlan p;
  p.name = "outage";
  p.cloud.push_back({sim::seconds(5), sim::seconds(30), /*rst_existing=*/true});
  p.may_break_connections = true;
  inj.arm(p);

  const sim::TimePoint t0 = world.sim().now();
  world.sim().run_until(t0 + sim::seconds(120));

  EXPECT_GE(world.cloud().total_sessions_killed(), 1u);
  EXPECT_GE(world.cloud().total_outage_refused(), 1u);
  ASSERT_NE(world.echo(), nullptr);
  EXPECT_GE(world.echo()->reconnects(), 1u);
  ASSERT_EQ(inj.injected(), 2u);
  EXPECT_EQ(inj.log()[0].kind, FaultEvent::Kind::kCloudDown);
  EXPECT_EQ(inj.log()[0].param, 1u);  // rst_existing
  EXPECT_EQ(inj.log()[1].kind, FaultEvent::Kind::kCloudUp);
}

}  // namespace
}  // namespace vg::faults
