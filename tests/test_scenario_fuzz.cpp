/// The generative world fuzzer (label: scenario-fuzz): thousands of seeded
/// random scenarios — scripted homes under fault plans, capture loops,
/// minimal chains, synthetic traces — each round-tripped through the `.scn`
/// format, run, and held to the chaos/degradation invariants plus trace
/// replay equivalence (TraceReader vs BatchDecoder, Replayer vs
/// BatchReplayer, live guard vs replay). A failing seed prints a repro
/// command: `vgscn run --seed N`.
///
/// The seed range is tunable without recompiling: VG_FUZZ_FIRST_SEED and
/// VG_FUZZ_SEEDS (default 1 and 2000; the nightly CI job raises the count).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "fleet/FleetRunner.h"
#include "scenario/Generator.h"
#include "simcore/BatchRunner.h"
#include "workload/ScenarioFuzz.h"
#include "workload/ScenarioRun.h"

namespace vg::workload {
namespace {

// Wires the fleet parity check into fuzz_scenarios: scripted specs with a
// [population] also get run serial-vs-sharded and compared bit for bit.
// Registered from this TU (not a static-library initializer, which the
// linker would drop).
[[maybe_unused]] const bool kPopulationCheckInstalled = [] {
  fleet::register_fuzz_population_check();
  return true;
}();

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

TEST(ScenarioFuzz, GeneratedWorldsHoldInvariants) {
  const std::uint64_t first = env_u64("VG_FUZZ_FIRST_SEED", 1);
  const std::uint64_t count = env_u64("VG_FUZZ_SEEDS", 2000);
  const FuzzReport report = fuzz_scenarios(first, count);
  std::printf("%s\n", report.to_string().c_str());
  for (const FuzzFailure& f : report.failures) {
    ADD_FAILURE() << f.message;
  }
  // Distribution sanity: a full-size run must exercise every shape; a
  // generator regression that collapses the mix would silently gut coverage.
  if (count >= 200) {
    EXPECT_GT(report.scripted, 0u);
    EXPECT_GT(report.home_captures, 0u);
    EXPECT_GT(report.chain_captures, 0u);
    EXPECT_GT(report.synthetic, 0u);
    EXPECT_GT(report.faults_injected, 0u);
    EXPECT_GT(report.replayed_spikes, 0u);
    EXPECT_GT(report.populations, 0u);
  }
}

TEST(ScenarioFuzz, GeneratorIsDeterministic) {
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, 4242ull, 1234567ull}) {
    const scenario::ScenarioSpec a = scenario::Generator::generate(seed);
    const scenario::ScenarioSpec b = scenario::Generator::generate(seed);
    EXPECT_TRUE(a == b) << "seed " << seed;
    EXPECT_EQ(a.name, "gen-" + std::to_string(seed));
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(ScenarioFuzz, ScriptedRunsAreBitIdenticalSerialOrBatched) {
  // The serial-vs-BatchRunner half of invariant 4, over *generated* worlds
  // rather than the hand-written chaos matrix.
  std::vector<scenario::ScenarioSpec> specs;
  for (std::uint64_t seed = 1; specs.size() < 8 && seed < 500; ++seed) {
    scenario::ScenarioSpec s = scenario::Generator::generate(seed);
    if (s.scripted()) specs.push_back(std::move(s));
  }
  ASSERT_EQ(specs.size(), 8u);

  std::vector<ChaosResult> serial;
  serial.reserve(specs.size());
  for (const auto& s : specs) serial.push_back(run_scenario_scripted(s));

  sim::BatchRunner pool;
  const std::vector<ChaosResult> batched = pool.map<ChaosResult>(
      specs.size(),
      [&](std::size_t i) { return run_scenario_scripted(specs[i]); });

  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    EXPECT_EQ(serial[i].fingerprint(), batched[i].fingerprint());
    EXPECT_EQ(serial[i].to_string(), batched[i].to_string());
  }
}

}  // namespace
}  // namespace vg::workload
