#include <gtest/gtest.h>

#include "home/Fcm.h"
#include "home/MobileDevice.h"
#include "home/Person.h"
#include "home/Testbed.h"
#include "voiceguard/Decision.h"
#include "voiceguard/FloorTracker.h"
#include "voiceguard/ThresholdApp.h"

namespace vg::guard {
namespace {

/// RSSI decision harness on the two-floor house, speaker deployment 1.
struct DecisionFixture : ::testing::Test {
  sim::Simulation sim{21};
  home::Testbed tb = home::Testbed::two_floor_house();
  radio::PathLossParams params{};
  radio::BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  home::FcmService fcm{sim};
  RssiDecisionModule module{sim, fcm, beacon};

  home::Person owner{sim, "owner", near_speaker()};
  home::MobileDevice phone{sim, tb.plan(), params, "phone",
                           [this] { return owner.position(); }};

  radio::Vec3 near_speaker() const {
    const auto s = tb.speaker_position(1);
    return {s.x - 1.5, s.y + 1.0, tb.plan().device_height(0)};
  }
  radio::Vec3 kitchen() const { return tb.location(33).pos; }

  /// Queries and runs the sim until the verdict arrives.
  bool query() {
    bool done = false, verdict = false;
    module.query([&](bool legit) {
      verdict = legit;
      done = true;
    });
    while (!done && sim.pending_events() > 0) sim.step(1);
    EXPECT_TRUE(done);
    return verdict;
  }
};

TEST_F(DecisionFixture, NoDevicesFailsClosed) {
  EXPECT_FALSE(query());
}

TEST_F(DecisionFixture, NearbyOwnerIsLegit) {
  module.register_device(phone, -8.0);
  EXPECT_TRUE(query());
  ASSERT_EQ(module.history().size(), 1u);
  EXPECT_TRUE(module.history()[0].legit);
  ASSERT_EQ(module.history()[0].reports.size(), 1u);
  EXPECT_GT(module.history()[0].reports[0].rssi, -8.0);
}

TEST_F(DecisionFixture, AwayOwnerIsMalicious) {
  module.register_device(phone, -8.0);
  owner.teleport(kitchen());
  EXPECT_FALSE(query());
}

TEST_F(DecisionFixture, QueryLatencyIsRecorded) {
  module.register_device(phone, -8.0);
  (void)query();
  ASSERT_EQ(module.latencies_s().size(), 1u);
  // FCM push + BLE scan + report uplink: between ~0.3 s and ~6 s.
  EXPECT_GT(module.latencies_s()[0], 0.3);
  EXPECT_LT(module.latencies_s()[0], 6.0);
  EXPECT_EQ(module.queries(), 1u);
  EXPECT_EQ(module.legit_verdicts(), 1u);
}

TEST_F(DecisionFixture, MultiUserAnyNearbyDeviceSuffices) {
  home::Person owner2{sim, "owner2", kitchen()};
  home::MobileDevice phone2{sim, tb.plan(), params, "phone2",
                            [&] { return owner2.position(); }};
  module.register_device(phone, -8.0);
  module.register_device(phone2, -8.0);

  // Owner 1 far, owner 2 far -> malicious.
  owner.teleport(kitchen());
  EXPECT_FALSE(query());
  // Owner 2 returns to the speaker -> legit again.
  owner2.teleport(near_speaker());
  EXPECT_TRUE(query());
}

TEST_F(DecisionFixture, UnresponsiveDeviceCountsAsAway) {
  module.register_device(phone, -8.0);
  // Break the FCM registration: the push goes nowhere.
  fcm.register_device(phone.fcm_token(), [](const std::string&) {});
  const bool verdict = query();
  EXPECT_FALSE(verdict);
  ASSERT_EQ(module.history().size(), 1u);
  ASSERT_EQ(module.history()[0].reports.size(), 1u);
  EXPECT_TRUE(module.history()[0].reports[0].timed_out);
}

TEST_F(DecisionFixture, FloorGateVetoesHighRssi) {
  // Owner in the directly-overhead study: RSSI above threshold, but the
  // floor tracker says "upstairs" -> blocked (§V-B2).
  FloorTracker tracker{sim, phone, beacon, /*speaker_floor=*/0};
  module.register_device(phone, -8.0, &tracker);
  owner.teleport(tb.location(55).pos);
  tracker.set_level(1);
  EXPECT_FALSE(query());
  tracker.set_level(0);
  EXPECT_TRUE(query());  // same place, gate open -> RSSI decides
}

TEST_F(DecisionFixture, SetThresholdAffectsOutcome) {
  module.register_device(phone, -8.0);
  ASSERT_TRUE(query());
  module.set_threshold("phone", 50.0);  // impossible bar
  EXPECT_FALSE(query());
}

TEST_F(DecisionFixture, PlacedDeviceMeasuresFromItsSpot) {
  // §VII non-applicable scenario: phone left charging next to the speaker
  // while the owner is away -> VoiceGuard is fooled by design.
  module.register_device(phone, -8.0);
  phone.put_down(near_speaker());
  owner.teleport(kitchen());
  EXPECT_TRUE(query());  // the phone vouches for an absent owner
  phone.pick_up();
  EXPECT_FALSE(query());
}

TEST_F(DecisionFixture, ReentrantQueryFromVerdictCallback) {
  // finish() must retire the pending entry *before* running the verdict: a
  // verdict that immediately re-queries rehashes pending_, which would dangle
  // any reference still held across the callback.
  module.register_device(phone, -8.0);
  bool outer_done = false, inner_done = false, inner_verdict = false;
  module.query([&](bool) {
    outer_done = true;
    module.query([&](bool legit) {
      inner_verdict = legit;
      inner_done = true;
    });
  });
  while (!inner_done && sim.pending_events() > 0) sim.step(1);
  EXPECT_TRUE(outer_done);
  ASSERT_TRUE(inner_done);
  EXPECT_TRUE(inner_verdict);
  EXPECT_EQ(module.history().size(), 2u);
}

TEST_F(DecisionFixture, LateReportAfterTimeoutIsCountedAndIgnored) {
  module.register_device(phone, -8.0);
  // Delay every FCM push past the 6 s device timeout: the query concludes
  // timed-out first, then the real report lands on freed query state.
  fcm.add_fault_window(sim.now(), sim.now() + sim::minutes(1), sim::seconds(7),
                       0.0);
  EXPECT_FALSE(query());
  ASSERT_EQ(module.history().size(), 1u);
  ASSERT_EQ(module.history()[0].reports.size(), 1u);
  EXPECT_TRUE(module.history()[0].reports[0].timed_out);
  sim.run_all();  // the delayed push + measurement now complete
  EXPECT_EQ(module.late_reports(), 1u);
  EXPECT_EQ(module.history().size(), 1u);  // nothing double-concluded
}

TEST_F(DecisionFixture, FcmRetryRecoversDroppedPush) {
  RssiDecisionModule::Options opts;
  opts.fcm_max_retries = 2;
  opts.fcm_retry_initial = sim::from_seconds(1.5);
  RssiDecisionModule retrying{sim, fcm, beacon, opts};
  retrying.register_device(phone, -8.0);
  // Every push in the first second is dropped; the 1.5 s retry gets through.
  fcm.add_fault_window(sim.now(), sim.now() + sim::seconds(1), sim::Duration{},
                       1.0);
  bool done = false, verdict = false;
  retrying.query([&](bool legit) {
    verdict = legit;
    done = true;
  });
  while (!done && sim.pending_events() > 0) sim.step(1);
  ASSERT_TRUE(done);
  EXPECT_TRUE(verdict);
  EXPECT_GE(retrying.fcm_retries(), 1u);
  EXPECT_EQ(fcm.pushes_dropped(), 1u);
  // The early verdict cancelled both the timeout and the remaining retry
  // round: draining the sim must not double-conclude or re-push.
  const std::uint64_t retries_at_verdict = retrying.fcm_retries();
  sim.run_all();
  EXPECT_EQ(retrying.history().size(), 1u);
  EXPECT_EQ(retrying.fcm_retries(), retries_at_verdict);
}

TEST_F(DecisionFixture, EarlyVerdictCancelsTimeoutTimer) {
  module.register_device(phone, -8.0);
  EXPECT_TRUE(query());
  const auto pending_after_verdict = sim.pending_events();
  sim.run_all();  // a live timeout event would fire here and re-conclude
  EXPECT_EQ(module.history().size(), 1u);
  EXPECT_EQ(module.queries(), 1u);
  (void)pending_after_verdict;
}

TEST(ThresholdApp, LearnsRoomMinimum) {
  sim::Simulation sim{31};
  home::Testbed tb = home::Testbed::two_floor_house();
  radio::BluetoothBeacon beacon{"spk", tb.speaker_position(1)};
  home::Person walker{sim, "w", tb.location(1).pos};
  home::MobileDevice phone{sim, tb.plan(), radio::PathLossParams{}, "phone",
                           [&] { return walker.position(); }};

  const auto* room = tb.plan().room_by_name("living-room");
  ASSERT_NE(room, nullptr);
  const auto path =
      room_boundary_path(room->bounds, tb.plan().device_height(0));

  ThresholdResult result;
  bool done = false;
  learn_threshold(sim, walker, phone, beacon, path, [&](ThresholdResult r) {
    result = r;
    done = true;
  });
  while (!done && sim.pending_events() > 0) sim.step(1);
  ASSERT_TRUE(done);

  // Dozens of samples along a ~40 m walk at 1 m/s, 0.5 s apart.
  EXPECT_GT(result.samples.size(), 50u);
  // The paper set -8 for this room; noise puts the walk minimum near there.
  EXPECT_LT(result.threshold, -5.0);
  EXPECT_GT(result.threshold, -11.0);
  // Every sample is >= the learned threshold by construction.
  for (double s : result.samples) EXPECT_GE(s, result.threshold);
}

TEST(FcmService, LatencyWithinConfiguredBounds) {
  sim::Simulation sim{41};
  home::FcmService fcm{sim};
  std::vector<double> latencies;
  for (int i = 0; i < 100; ++i) {
    fcm.register_device("tok", [&, t0 = sim.now()](const std::string&) {
      latencies.push_back((sim.now() - t0).seconds());
    });
    fcm.push("tok", "x");
    sim.run_all();
  }
  ASSERT_EQ(latencies.size(), 100u);
  for (double l : latencies) {
    EXPECT_GE(l, 0.18);
    EXPECT_LE(l, 5.0);
  }
  // Median near the configured ~0.65 s.
  std::sort(latencies.begin(), latencies.end());
  EXPECT_GT(latencies[50], 0.35);
  EXPECT_LT(latencies[50], 1.1);
}

TEST(FcmService, UnknownTokenDropped) {
  sim::Simulation sim{41};
  home::FcmService fcm{sim};
  fcm.push("ghost", "x");
  sim.run_all();
  EXPECT_EQ(fcm.pushes_sent(), 1u);
}

}  // namespace
}  // namespace vg::guard
