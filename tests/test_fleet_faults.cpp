/// Fleet-level fault orchestration (src/fleet/FleetFaultPlan.h,
/// FleetFaultOrchestrator): validate-before-install negative paths, the
/// deterministic region/selection hashing, recovery-metric merge exactness,
/// and the parity invariant under orchestrated plans — serial and sharded
/// fleets must derive bit-identical per-home faults and stats.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/FaultPlan.h"
#include "fleet/AggregateStats.h"
#include "fleet/FleetFaultOrchestrator.h"
#include "fleet/FleetRunner.h"
#include "fleet/WorldTemplate.h"
#include "scenario/ScenarioLoader.h"
#include "scenario/ScnParser.h"
#include "scenario/Serialize.h"

namespace vg::fleet {
namespace {

// ---------------------------------------------------------------------------
// Plan construction helpers.

FleetFaultPlan valid_plan() {
  FleetFaultPlan p;
  p.name = "test-plan";
  p.regions = 4;
  p.fcm_outages.push_back({/*region=*/0, sim::seconds(10), sim::seconds(8),
                           sim::milliseconds(250), /*drop_prob=*/1.0});
  p.cloud_capacity.push_back({sim::seconds(30), sim::seconds(6),
                              /*fraction=*/0.5, /*rst_existing=*/true,
                              sim::seconds(4), sim::milliseconds(200)});
  p.wan_degrades.push_back({/*region=*/1, sim::seconds(12), sim::seconds(10),
                            sim::milliseconds(150)});
  p.restart_waves.push_back({sim::seconds(45), sim::seconds(5),
                             /*fraction=*/0.5});
  return p;
}

// ---------------------------------------------------------------------------
// Named plan registry.

TEST(FleetFaultPlans, RegistryValidatesAndResolvesEveryNamedPlan) {
  const auto& plans = fleet_fault_plans();
  ASSERT_FALSE(plans.empty());
  EXPECT_EQ(plans.front().name, "fleet-baseline");
  EXPECT_TRUE(plans.front().empty());

  std::set<std::string> names;
  for (const FleetFaultPlan& p : plans) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate plan " << p.name;
    EXPECT_NO_THROW(FleetFaultOrchestrator::validate(p, 64)) << p.name;
    const FleetFaultPlan* found = fleet_fault_plan(p.name);
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(*found == p);
  }
  EXPECT_EQ(fleet_fault_plan("no-such-plan"), nullptr);
}

// ---------------------------------------------------------------------------
// validate(): malformed plans are rejected before anything is installed.

TEST(FleetFaultValidation, RejectsBadRegionCounts) {
  FleetFaultPlan p = valid_plan();
  p.regions = 0;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
  p.regions = kMaxRegions + 1;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);

  // More regions than homes guarantees zero-home regions.
  p.regions = 4;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 3), std::invalid_argument);
  EXPECT_NO_THROW(FleetFaultOrchestrator::validate(p, 4));
}

TEST(FleetFaultValidation, RejectsEventRegionsOutsideThePlan) {
  FleetFaultPlan p = valid_plan();
  p.fcm_outages[0].region = 4;  // regions is 4, so valid regions are 0..3
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);

  p = valid_plan();
  p.wan_degrades[0].region = 99;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
}

TEST(FleetFaultValidation, RejectsOverlappingRegionalFcmWindows) {
  FleetFaultPlan p = valid_plan();
  // Overlaps the region-0 outage at [10, 18).
  p.fcm_outages.push_back({0, sim::seconds(15), sim::seconds(5),
                           sim::Duration{}, 1.0});
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);

  // The same window in another region is fine — regions are disjoint homes.
  p = valid_plan();
  p.fcm_outages.push_back({2, sim::seconds(15), sim::seconds(5),
                           sim::Duration{}, 1.0});
  EXPECT_NO_THROW(FleetFaultOrchestrator::validate(p, 64));
}

TEST(FleetFaultValidation, RejectsBadCapacityFractions) {
  FleetFaultPlan p = valid_plan();
  p.cloud_capacity[0].fraction = 0.0;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
  p.cloud_capacity[0].fraction = 1.5;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
}

TEST(FleetFaultValidation, CapacityEnvelopesIncludeTheRecoverySpread) {
  FleetFaultPlan p = valid_plan();
  // The first capacity event's envelope is [30, 30+6+4) = [30, 40): a second
  // event starting inside the spread still collides.
  p.cloud_capacity.push_back({sim::seconds(38), sim::seconds(5), 0.5, false,
                              sim::Duration{}, sim::Duration{}});
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);

  p = valid_plan();
  p.cloud_capacity.push_back({sim::seconds(40), sim::seconds(5), 0.5, false,
                              sim::Duration{}, sim::Duration{}});
  EXPECT_NO_THROW(FleetFaultOrchestrator::validate(p, 64));
}

TEST(FleetFaultValidation, RejectsOverlappingRegionalWanWindows) {
  FleetFaultPlan p = valid_plan();
  p.wan_degrades.push_back({1, sim::seconds(20), sim::seconds(5),
                            sim::milliseconds(100)});
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);

  p = valid_plan();
  p.wan_degrades.push_back({0, sim::seconds(20), sim::seconds(5),
                            sim::milliseconds(100)});
  EXPECT_NO_THROW(FleetFaultOrchestrator::validate(p, 64));
}

TEST(FleetFaultValidation, RejectsBadWaveFractions) {
  FleetFaultPlan p = valid_plan();
  p.restart_waves[0].fraction = 0.0;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
  p.restart_waves[0].fraction = 2.0;
  EXPECT_THROW(FleetFaultOrchestrator::validate(p, 64), std::invalid_argument);
}

TEST(FleetFaultValidation, AgainstBaseCatchesEveryCollisionGroup) {
  const FleetFaultOrchestrator orch{valid_plan(), 64};

  faults::FaultPlan base;  // empty base never collides
  EXPECT_NO_THROW(orch.validate_against_base(base));

  // FCM: base window [12, 20) meets the fleet outage at [10, 18).
  base = {};
  base.fcm.push_back({sim::seconds(12), sim::seconds(8), sim::Duration{}, 0.5});
  EXPECT_THROW(orch.validate_against_base(base), std::invalid_argument);

  // Cloud: base outage [35, 45) meets the capacity envelope [30, 40).
  base = {};
  base.cloud.push_back({sim::seconds(35), sim::seconds(10), true});
  EXPECT_THROW(orch.validate_against_base(base), std::invalid_argument);

  // Brownout: base brownout inside the capacity *window* [30, 36).
  base = {};
  base.brownouts.push_back(
      {sim::seconds(32), sim::seconds(2), sim::milliseconds(100)});
  EXPECT_THROW(orch.validate_against_base(base), std::invalid_argument);

  // WAN latency spike: meets the wan_degrade window [12, 22).
  base = {};
  faults::LinkFault spike;
  spike.where = faults::LinkFault::Where::kWan;
  spike.kind = faults::LinkFault::Kind::kLatencySpike;
  spike.start = sim::seconds(15);
  spike.duration = sim::seconds(5);
  spike.extra_latency = sim::milliseconds(50);
  base.links.push_back(spike);
  EXPECT_THROW(orch.validate_against_base(base), std::invalid_argument);

  // A LAN flap in the same window is a different group — no collision.
  base = {};
  faults::LinkFault flap;
  flap.where = faults::LinkFault::Where::kLan;
  flap.kind = faults::LinkFault::Kind::kFlap;
  flap.start = sim::seconds(15);
  flap.duration = sim::seconds(5);
  base.links.push_back(flap);
  EXPECT_NO_THROW(orch.validate_against_base(base));
}

// ---------------------------------------------------------------------------
// Deterministic region assignment and per-home expansion.

TEST(FleetFaultOrchestration, RegionAssignmentIsDeterministicAndInRange) {
  const FleetFaultOrchestrator a{valid_plan(), 64};
  const FleetFaultOrchestrator b{valid_plan(), 64};
  std::set<std::uint32_t> seen;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const std::uint32_t r = a.region_of(seed);
    EXPECT_LT(r, valid_plan().regions);
    EXPECT_EQ(r, b.region_of(seed));  // pure function of (plan, seed)
    seen.insert(r);
  }
  // 200 hashed seeds over 4 regions: every region gets homes.
  EXPECT_EQ(seen.size(), valid_plan().regions);
}

TEST(FleetFaultOrchestration, ApplyIsAPureFunctionOfTheHomeSeed) {
  const FleetFaultOrchestrator a{valid_plan(), 64};
  const FleetFaultOrchestrator b{valid_plan(), 64};
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    faults::FaultPlan out_a;
    faults::FaultPlan out_b;
    const std::size_t n_a = a.apply(seed, out_a);
    const std::size_t n_b = b.apply(seed, out_b);
    EXPECT_EQ(n_a, n_b);
    EXPECT_TRUE(out_a == out_b);
    EXPECT_EQ(n_a, out_a.total_entries());
  }
}

TEST(FleetFaultOrchestration, CapacityBrownoutTouchesEveryHome) {
  // extra_latency > 0 means the load-coupled brownout lands on every home,
  // refused or not — so a capacity event always orchestrates the full fleet.
  const FleetFaultOrchestrator orch{valid_plan(), 64};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    faults::FaultPlan out;
    orch.apply(seed, out);
    EXPECT_EQ(out.brownouts.size(), 1u) << "seed " << seed;
    // Brownout latency is the configured extra scaled by the *expected* load
    // fraction, never by live cross-home state.
    EXPECT_EQ(out.brownouts[0].extra_latency,
              sim::Duration{100'000'000});  // 200 ms * 0.5
  }
}

TEST(FleetFaultOrchestration, LastWindowEndCoversEveryVector) {
  const FleetFaultOrchestrator orch{valid_plan(), 64};
  // Latest orchestrated instant: the restart wave at 45 s + 5 s stagger.
  EXPECT_GE(orch.last_window_end(), sim::seconds(50));
}

// ---------------------------------------------------------------------------
// AggregateStats: recovery metrics merge exactly in any shard grouping.

TEST(FleetRecoveryStats, RecoveryHistogramMergesExactlyAcrossShardCounts) {
  // 64 synthetic homes folded whole, and split 2-way and 8-way: the merged
  // objects must be bit-identical to the single fold, including the max-based
  // time_to_fleet_recovery and the per-region degradation counters.
  const auto sample_ns = [](int i) {
    return static_cast<std::uint64_t>(i) * 137'000'000ull;
  };
  AggregateStats whole;
  std::vector<AggregateStats> two(2);
  std::vector<AggregateStats> eight(8);
  for (int i = 0; i < 64; ++i) {
    const bool recovered = i % 13 != 0;
    whole.add_recovery(sample_ns(i), recovered);
    two[i % 2].add_recovery(sample_ns(i), recovered);
    eight[i % 8].add_recovery(sample_ns(i), recovered);
    const auto region = static_cast<std::uint32_t>(i % 4);
    whole.add_orchestration(region, static_cast<std::uint64_t>(i % 3));
    two[i % 2].add_orchestration(region, static_cast<std::uint64_t>(i % 3));
    eight[i % 8].add_orchestration(region, static_cast<std::uint64_t>(i % 3));
  }
  AggregateStats from_two;
  for (const AggregateStats& s : two) from_two.merge(s);
  AggregateStats from_eight;
  for (const AggregateStats& s : eight) from_eight.merge(s);
  EXPECT_TRUE(from_two == whole);
  EXPECT_TRUE(from_eight == whole);
  EXPECT_EQ(from_two.fingerprint(), whole.fingerprint());
  EXPECT_EQ(from_eight.fingerprint(), whole.fingerprint());

  // Reverse merge order too (commutativity of the max and the sums).
  AggregateStats reversed;
  for (auto it = eight.rbegin(); it != eight.rend(); ++it) reversed.merge(*it);
  EXPECT_TRUE(reversed == whole);

  // The extracted metrics read the merged state exactly.
  EXPECT_EQ(whole.time_to_fleet_recovery_ns(), sample_ns(63));
  EXPECT_EQ(whole.counters().unrecovered_homes, 5u);  // i in {0,13,26,39,52}
  EXPECT_EQ(whole.recovery_samples(), 59u);
  std::uint64_t degraded = 0;
  for (const std::uint64_t d : whole.region_degraded()) degraded += d;
  EXPECT_EQ(degraded, whole.counters().orchestrated_homes);
}

TEST(FleetRecoveryStats, UnrecoveredHomesContributeNoSample) {
  AggregateStats s;
  s.add_recovery(5'000'000'000ull, false);
  EXPECT_EQ(s.recovery_samples(), 0u);
  EXPECT_EQ(s.time_to_fleet_recovery_ns(), 0u);
  EXPECT_EQ(s.counters().unrecovered_homes, 1u);
  // But the fingerprint must still see it.
  AggregateStats t;
  EXPECT_NE(s.fingerprint(), t.fingerprint());
}

// ---------------------------------------------------------------------------
// .scn loader: the [fleet_faults] section mirrors orchestrator validation
// with line-accurate errors, and round-trips through the canonical writer.

constexpr const char* kScriptedBase = R"([scenario]
name = fleet-storm
kind = home
seed = 77

[home]
testbed = apartment
deployment = 1
owners = 1

[guard]
mode = voiceguard

[schedule]
command = 10 legit
command = 25 attack
command = 41 legit
drain_s = 80

[population]
homes = 8
command_jitter_s = 1
attack_flip = 0.25
)";

constexpr const char* kFleetSection = R"(
[fleet_faults]
regions = 4
fcm_outage = 0 10 8 delay_s=0.25 drop=1
cloud_capacity = 30 6 rst fraction=0.5 spread_s=4 extra_ms=200
wan_degrade = 1 12 10 extra_ms=150
restart_wave = 45 5 fraction=0.5
reconnect_backoff = 2 cap_s=8 budget=4
fcm_retry_jitter = 0.25
fcm_retry_budget = 16
)";

scenario::ScenarioSpec storm_spec() {
  return scenario::ScenarioLoader::load(std::string{kScriptedBase} +
                                        kFleetSection);
}

void expect_scn_error(const std::string& text, const std::string& needle) {
  try {
    (void)scenario::ScenarioLoader::load(text);
    FAIL() << "expected ScnError containing '" << needle << "'";
  } catch (const scenario::ScnError& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(FleetScnLoader, FullFleetSectionRoundTripsThroughTheWriter) {
  const scenario::ScenarioSpec spec = storm_spec();
  EXPECT_EQ(spec.fleet_faults.regions, 4u);
  EXPECT_EQ(spec.fleet_faults.total_events(), 4u);
  EXPECT_TRUE(spec.fleet_faults.resilience.any());
  EXPECT_EQ(spec.fleet_faults.name, "fleet-storm");  // mirrors the spec name

  const std::string out = scenario::write_scn(spec);
  const scenario::ScenarioSpec reparsed = scenario::ScenarioLoader::load(out);
  EXPECT_TRUE(reparsed == spec);
  EXPECT_EQ(scenario::write_scn(reparsed), out);  // fixed point
}

TEST(FleetScnLoader, FleetSectionNeedsAPopulation) {
  std::string text{kScriptedBase};
  const auto pop = text.find("[population]");
  ASSERT_NE(pop, std::string::npos);
  text.resize(pop);  // strip the population section
  expect_scn_error(text + kFleetSection, "needs a [population]");
}

TEST(FleetScnLoader, RejectsMoreRegionsThanHomes) {
  std::string text = std::string{kScriptedBase} + kFleetSection;
  const auto homes = text.find("homes = 8");
  ASSERT_NE(homes, std::string::npos);
  text.replace(homes, 9, "homes = 3");
  expect_scn_error(text, "zero-home regions");
}

TEST(FleetScnLoader, RejectsEventRegionsOutsideThePlan) {
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nregions = 2\nfcm_outage = 2 10 5\n",
                   "region");
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nwan_degrade = 1 10 5\n",
                   "region");  // default regions = 1
}

TEST(FleetScnLoader, RejectsOverlappingRegionalWindows) {
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nregions = 2\n"
                       "fcm_outage = 0 10 10\nfcm_outage = 0 15 10\n",
                   "overlap");
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nregions = 2\n"
                       "wan_degrade = 1 10 10\nwan_degrade = 1 12 3\n",
                   "overlap");
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\n"
                       "cloud_capacity = 10 10 rst spread_s=10\n"
                       "cloud_capacity = 25 5 norst\n",
                   "overlap");
}

TEST(FleetScnLoader, RejectsBadFractionsAndJitter) {
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\ncloud_capacity = 10 5 rst fraction=0\n",
                   "fraction");
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nrestart_wave = 10 5 fraction=1.5\n",
                   "fraction");
  expect_scn_error(std::string{kScriptedBase} +
                       "\n[fleet_faults]\nfcm_retry_jitter = 1\n",
                   "fcm_retry_jitter");
}

TEST(FleetScnLoader, RejectsFleetWindowsCollidingWithBaseFaults) {
  // The base [faults] applies to every home, so a fleet fcm window may meet
  // it in any region — the loader rejects the collision with both lines.
  std::string text{kScriptedBase};
  const auto pop = text.find("[population]");
  ASSERT_NE(pop, std::string::npos);
  text.insert(pop, "[faults]\nfcm = 12 10 drop=0.5\n\n");
  expect_scn_error(text + kFleetSection, "collides with the base [faults]");
}

TEST(FleetScnLoader, ForbiddenOutsideScriptedHomePopulations) {
  expect_scn_error(
      "[scenario]\nname = cap\n[schedule]\ncommands = 4\n"
      "[fleet_faults]\nregions = 2\n",
      "fleet_faults");
}

// ---------------------------------------------------------------------------
// Integration: orchestrated populations keep bit-exact serial/sharded parity
// and every home recovers before the horizon.

TEST(FleetFaultIntegration, OrchestratedParityAcrossShardLayouts) {
  const WorldTemplate tmpl{storm_spec()};
  ASSERT_NE(tmpl.orchestrator(), nullptr);
  const AggregateStats serial = run_fleet_serial(tmpl, 0, tmpl.homes());

  for (const unsigned shards : {1u, 2u, 8u}) {
    for (const std::uint64_t resident : {0ull, 2ull}) {
      FleetConfig cfg;
      cfg.shards = shards;
      cfg.max_resident = resident;
      const AggregateStats fleet = run_fleet(tmpl, cfg);
      EXPECT_TRUE(fleet == serial)
          << shards << " shards, max_resident " << resident
          << ": fingerprint " << fleet.fingerprint() << " != "
          << serial.fingerprint();
    }
  }
}

TEST(FleetFaultIntegration, StormOrchestratesAndEveryHomeRecovers) {
  const WorldTemplate tmpl{storm_spec()};
  const AggregateStats stats = run_fleet_serial(tmpl, 0, tmpl.homes());

  // The capacity brownout touches every home, so the whole fleet counts as
  // orchestrated; the rst refusals force real session re-establishment.
  EXPECT_EQ(stats.counters().orchestrated_homes, tmpl.homes());
  EXPECT_GT(stats.counters().orchestrated_faults, 0u);
  EXPECT_EQ(stats.counters().unrecovered_homes, 0u);
  EXPECT_EQ(stats.recovery_samples(), tmpl.homes());

  // Degradation counters cover exactly the orchestrated homes, region by
  // region.
  std::uint64_t degraded = 0;
  for (const std::uint64_t d : stats.region_degraded()) degraded += d;
  EXPECT_EQ(degraded, stats.counters().orchestrated_homes);
}

TEST(FleetFaultIntegration, ResiliencePolicyReachesTheHomes) {
  // Same capacity crunch with and without the resilience policy: the backoff
  // scales the post-refusal reconnect waits, so each affected home's final
  // establishment — and with it the recovery histogram — must shift. This is
  // proof the policy is actually plumbed from the template into each home.
  // The storm's restart wave is dropped for this comparison: a power cycle
  // after the crunch would re-establish every session at wave-driven times
  // and wash the backoff shift out of the recorded stats.
  std::string text = std::string{kScriptedBase} + kFleetSection;
  const std::string wave = "restart_wave = 45 5 fraction=0.5\n";
  text.replace(text.find(wave), wave.size(), "");
  const scenario::ScenarioSpec with = scenario::ScenarioLoader::load(text);
  scenario::ScenarioSpec without = with;
  without.fleet_faults.resilience = {};

  const AggregateStats a = run_fleet_serial(WorldTemplate{with}, 0, 8);
  const AggregateStats b = run_fleet_serial(WorldTemplate{without}, 0, 8);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // The backoff only slows the refused homes down, never faster, and in both
  // runs every home still recovers before the horizon.
  EXPECT_GE(a.time_to_fleet_recovery_ns(), b.time_to_fleet_recovery_ns());
  EXPECT_EQ(a.counters().unrecovered_homes, 0u);
  EXPECT_EQ(b.counters().unrecovered_homes, 0u);
}

}  // namespace
}  // namespace vg::fleet
