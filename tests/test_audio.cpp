#include <gtest/gtest.h>

#include "audio/Verifiers.h"
#include "audio/Voice.h"
#include "simcore/Rng.h"

namespace vg::audio {
namespace {

struct AudioFixture : ::testing::Test {
  sim::RngRegistry reg{2024};
  sim::Rng& rng = reg.stream("audio");
  SpeakerProfile owner = SpeakerProfile::random(rng);
  SpeakerProfile stranger = SpeakerProfile::random(rng);
  VoiceMatchVerifier vm;

  void SetUp() override { vm.enroll(owner, rng); }

  template <typename Gen>
  double acceptance_rate(Gen gen, int n = 300) {
    int ok = 0;
    for (int i = 0; i < n; ++i) {
      if (vm.accepts(gen())) ++ok;
    }
    return static_cast<double>(ok) / n;
  }
};

TEST_F(AudioFixture, OwnerLiveUtterancesAccepted) {
  EXPECT_GT(acceptance_rate([&] { return owner.live_utterance(rng); }), 0.95);
}

TEST_F(AudioFixture, StrangerRejected) {
  EXPECT_LT(acceptance_rate([&] { return stranger.live_utterance(rng); }),
            0.05);
}

TEST_F(AudioFixture, ReplayBypassesVoiceMatch) {
  // The voice-match protection of commercial speakers is evaded by replaying
  // the owner's recorded voice ([31], [48], [72]).
  EXPECT_GT(acceptance_rate([&] { return replay_attack(owner, rng); }), 0.85);
}

TEST_F(AudioFixture, SynthesisBypassesVoiceMatch) {
  EXPECT_GT(acceptance_rate([&] { return synthesis_attack(owner, rng); }),
            0.70);
}

TEST_F(AudioFixture, UltrasoundOftenBypassesVoiceMatch) {
  // Demodulation distorts the identity match more than replay/synthesis do,
  // but a substantial fraction still slips past the voice-match threshold.
  EXPECT_GT(acceptance_rate([&] { return ultrasound_attack(owner, rng); }),
            0.30);
}

TEST_F(AudioFixture, LivenessDetectorCatchesNaiveReplay) {
  LivenessDetector ld;
  int caught = 0;
  for (int i = 0; i < 300; ++i) {
    if (!ld.accepts(replay_attack(owner, rng))) ++caught;
  }
  EXPECT_GT(caught, 270);
}

TEST_F(AudioFixture, AdaptiveSynthesisEvadesLivenessDetector) {
  // The [14] adaptive-attacker point: knowing the detector, synthesis
  // suppresses the cues liveness detection keys on.
  LivenessDetector ld;
  int passed = 0;
  for (int i = 0; i < 300; ++i) {
    if (ld.accepts(synthesis_attack(owner, rng))) ++passed;
  }
  EXPECT_GT(passed, 240);
}

TEST_F(AudioFixture, LivenessDetectorAcceptsLiveSpeech) {
  LivenessDetector ld;
  int passed = 0;
  for (int i = 0; i < 300; ++i) {
    if (ld.accepts(owner.live_utterance(rng))) ++passed;
  }
  EXPECT_GT(passed, 285);
}

TEST(Voice, EmbeddingDistanceIsAMetricOnExamples) {
  Embedding a{}, b{};
  b[0] = 3.0;
  b[1] = 4.0;
  EXPECT_DOUBLE_EQ(embedding_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(embedding_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(embedding_distance(a, b), embedding_distance(b, a));
}

TEST(Voice, SourcesLabelled) {
  EXPECT_EQ(to_string(SampleSource::kReplay), "replay");
  EXPECT_EQ(to_string(SampleSource::kSynthesis), "synthesis");
}

TEST(Voice, UnenrolledVerifierRejectsEverything) {
  sim::RngRegistry reg{9};
  auto& rng = reg.stream("a");
  const SpeakerProfile p = SpeakerProfile::random(rng);
  VoiceMatchVerifier vm;
  EXPECT_FALSE(vm.enrolled());
  EXPECT_FALSE(vm.accepts(p.live_utterance(rng)));
}

}  // namespace
}  // namespace vg::audio
