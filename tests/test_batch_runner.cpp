#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/BatchRunner.h"
#include "workload/TrialRunner.h"

namespace vg {
namespace {

// ---------------------------------------------------------------------------
// BatchRunner mechanics
// ---------------------------------------------------------------------------

TEST(BatchRunner, MapReturnsResultsInSubmissionOrder) {
  sim::BatchRunner pool{4};
  EXPECT_EQ(pool.worker_count(), 4u);
  const auto out = pool.map<int>(100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunner, RunsEveryJobExactlyOnce) {
  sim::BatchRunner pool{3};
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BatchRunner, EmptyBatchIsNoop) {
  sim::BatchRunner pool{2};
  pool.run(0, [](std::size_t) { FAIL() << "job ran for empty batch"; });
}

TEST(BatchRunner, PoolIsReusableAcrossBatches) {
  sim::BatchRunner pool{2};
  for (int round = 0; round < 5; ++round) {
    const auto out =
        pool.map<std::size_t>(10, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 55u);
  }
}

TEST(BatchRunner, PropagatesJobExceptions) {
  sim::BatchRunner pool{2};
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error{"boom"};
                        }),
               std::runtime_error);
  // The pool must still be usable after a failed batch.
  const auto out = pool.map<int>(3, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(BatchRunner, DefaultWorkerCountIsHardwareConcurrency) {
  sim::BatchRunner pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(BatchRunner, PinnedPoolProducesIdenticalResults) {
  // Core pinning is a placement hint: same jobs, same results, and pinned()
  // reports whether every worker actually landed on its CPU (it may not in
  // restricted cpusets — either way the results cannot move).
  sim::BatchRunner plain{3};
  sim::BatchRunner pinned{3, /*pin_threads=*/true};
  EXPECT_FALSE(plain.pinned());
  const auto a = plain.map<int>(64, [](std::size_t i) {
    return static_cast<int>(i * 31 + 7);
  });
  const auto b = pinned.map<int>(64, [](std::size_t i) {
    return static_cast<int>(i * 31 + 7);
  });
  EXPECT_EQ(a, b);
#if defined(__linux__)
  EXPECT_TRUE(pinned.pinned());
#endif
}

// ---------------------------------------------------------------------------
// Serial / parallel parity: the same trial matrix must produce bit-identical
// per-trial results through the pool and on a single thread.
// ---------------------------------------------------------------------------

std::vector<workload::TrialSpec> parity_matrix() {
  using workload::WorldConfig;
  std::vector<workload::TrialSpec> specs;
  const struct {
    WorldConfig::TestbedKind kind;
    int owners;
    bool watch;
    std::uint64_t seed;
  } cases[] = {
      {WorldConfig::TestbedKind::kHouse, 2, false, 11},
      {WorldConfig::TestbedKind::kApartment, 2, false, 12},
      {WorldConfig::TestbedKind::kOffice, 1, true, 13},
  };
  for (const auto& c : cases) {
    workload::TrialSpec spec;
    spec.world.testbed = c.kind;
    spec.world.owner_count = c.owners;
    spec.world.use_watch = c.watch;
    spec.world.seed = c.seed;
    spec.experiment.duration = sim::hours(12);
    spec.experiment.episode_mean = sim::minutes(20);
    spec.label = "trial-" + std::to_string(c.seed);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(BatchRunnerParity, ThreeTrialMatrixMatchesSerialBitForBit) {
  const auto specs = parity_matrix();
  const auto serial = workload::run_trials_serial(specs);

  sim::BatchRunner pool{3};  // force real concurrency even on small machines
  const auto batched = workload::run_trials(specs, pool);

  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& b = batched[i];
    SCOPED_TRACE(s.label);
    EXPECT_EQ(s.label, b.label);

    // Identical confusion matrices...
    EXPECT_EQ(s.confusion.tp, b.confusion.tp);
    EXPECT_EQ(s.confusion.fn, b.confusion.fn);
    EXPECT_EQ(s.confusion.tn, b.confusion.tn);
    EXPECT_EQ(s.confusion.fp, b.confusion.fp);

    // ...identical kernel trajectories...
    EXPECT_EQ(s.executed_events, b.executed_events);
    EXPECT_EQ(s.legit_issued, b.legit_issued);
    EXPECT_EQ(s.malicious_issued, b.malicious_issued);

    // ...and identical per-command outcome vectors.
    ASSERT_EQ(s.outcomes.size(), b.outcomes.size());
    for (std::size_t k = 0; k < s.outcomes.size(); ++k) {
      const auto& so = s.outcomes[k];
      const auto& bo = b.outcomes[k];
      EXPECT_EQ(so.id, bo.id);
      EXPECT_EQ(so.malicious, bo.malicious);
      EXPECT_EQ(so.executed, bo.executed);
      EXPECT_EQ(so.when, bo.when);
      EXPECT_EQ(so.issuer, bo.issuer);
      EXPECT_EQ(so.owner_whereabouts, bo.owner_whereabouts);
    }
  }
}

// Repeated batched runs are also self-identical (no hidden shared state
// between worlds living on different pool threads).
TEST(BatchRunnerParity, RepeatedBatchRunsAreIdentical) {
  const auto specs = parity_matrix();
  sim::BatchRunner pool{2};
  const auto a = workload::run_trials(specs, pool);
  const auto b = workload::run_trials(specs, pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].executed_events, b[i].executed_events);
    EXPECT_EQ(a[i].confusion.total(), b[i].confusion.total());
    EXPECT_EQ(a[i].outcomes.size(), b[i].outcomes.size());
  }
}

}  // namespace
}  // namespace vg
